"""Two-level context-based (FCM) value predictor [Sazeides & Smith 1997].

Structure (Section 5.2 of the paper):

* **History table** (level 1): direct-mapped, indexed by instruction PC,
  untagged — every lookup produces a context, so every register-writing
  instruction receives a prediction.  Each entry maintains the most recent
  ``order`` (=4) values produced by the instructions mapping to it.  The
  *context* is a hash folding those values into ``context_bits`` (=16) bits.
* **Prediction table** (level 2): indexed by the context alone (so static
  instructions producing identical sequences share prediction state);
  each entry holds a 64-bit value and a one-bit counter guiding
  replacement — a mismatching outcome first clears the counter, and only
  a second consecutive mismatch replaces the stored value.

Update timing (Section 5.2).  Under *immediate* (I) timing the history
advances with the correct value and the prediction table trains right
after each prediction.  Under *delayed* (D) timing the history table is
updated **speculatively with the prediction**: each level-1 entry keeps a
committed history plus a queue of outstanding speculative values; the
prediction context hashes both.  At retirement the prediction table is
trained against the committed context, the retiring instance's own
speculative entry is removed (identified by the token handed out at
prediction time), and — because every younger speculative value was
chained from it — a mispredicted entry squashes the rest of the queue.

The consequence, visible in the paper's Figure 4, is that delayed update
predicts correctly only while the speculative chain stays correct: the
chain re-seeds from the committed history whenever the pipeline drains
(branch mispredictions, long-latency stalls), so accuracy degrades as
windows get deeper and drains get rarer.

Storage layout (see docs/PERFORMANCE.md).  Both levels live in flat
columns rather than per-entry objects with attribute access:

* A level-1 entry is one plain list of ``3 + 2 * order`` slots —
  ``[live_ctx, committed_ctx, ring_head, fold ring..., value ring...]``
  — materialized on first touch (a direct-mapped 64K-entry table would
  cost milliseconds to preallocate per run while a trace touches only a
  few hundred entries).  The two leading slots are running context
  accumulators: the *committed* context and the *live* (committed +
  speculative) context, both kept **unmasked** so they can be advanced
  incrementally.  Because the FCM hash is an XOR of position-shifted
  folds, appending a value to a full window is
  ``ctx' = ((ctx ^ oldest_fold) >> 1) ^ (new_fold << (order-1))`` — two
  XORs and two shifts, independent of ``order``.  The ``context_bits``
  mask is applied only at level-2 lookup, which makes the running value
  bit-identical to hashing the window from scratch.
* Level 2 is preallocated flat columns — a value list, a parallel list
  of each value's fold (so the fused predict+speculate path never
  re-folds the predicted value), and a ``bytearray`` of one-bit
  replacement counters.
* Outstanding speculative chains are kept only for entries that have
  them, in a dict of ``(token, value, fold)`` lists; the live context is
  advanced in O(1) on speculation and re-walked only at retirement when
  a chain is reconciled.
"""

from __future__ import annotations

from repro.isa.opcodes import INSTRUCTION_BYTES
from repro.trace.record import FOLD_BITS
from repro.vp.base import ValuePredictor

_MASK64 = (1 << 64) - 1

#: PC -> table-index shift (instructions are fixed-size and aligned).
_PC_SHIFT = INSTRUCTION_BYTES.bit_length() - 1
assert 1 << _PC_SHIFT == INSTRUCTION_BYTES

#: Level-1 entry layout: ``[live_ctx, committed_ctx, head, folds..., values...]``.
_LIVE = 0
_COMMITTED = 1
_HEAD = 2
_RING = 3


def fold_value(value: int, bits: int) -> int:
    """Fold a 64-bit value into ``bits`` bits by XORing chunks."""
    value &= _MASK64
    if bits == 16:
        return (value ^ (value >> 16) ^ (value >> 32) ^ (value >> 48)) & 0xFFFF
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


class ContextValuePredictor(ValuePredictor):
    """The paper's context-based predictor."""

    def __init__(
        self,
        history_bits: int = 16,
        context_bits: int = 16,
        order: int = 4,
    ):
        super().__init__()
        if order < 1:
            raise ValueError("order must be >= 1")
        if history_bits <= 0 or context_bits <= 0:
            raise ValueError("history_bits and context_bits must be positive")
        self.history_bits = history_bits
        self.context_bits = context_bits
        self.order = order
        self._l1_mask = (1 << history_bits) - 1
        self._ctx_mask = (1 << context_bits) - 1
        self._next_token = 0
        #: Precomputed: the trace-supplied 16-bit fold is usable directly.
        self._fold16_ok = context_bits == FOLD_BITS
        #: Level-1 column table, materialized per entry on first touch.
        self._entries: dict[int, list[int]] = {}
        #: Zero-entry template; ``list.copy`` beats rebuilding from parts.
        self._fresh = [0] * (_RING + order + order)
        #: Outstanding speculative chains, only for entries that have any:
        #: l1 index -> [(token, value, fold), ...] oldest first.
        self._spec: dict[int, list[tuple[int, int, int]]] = {}
        l2_size = 1 << context_bits
        self._values = [0] * l2_size
        self._value_folds = [0] * l2_size
        self._counters = bytearray(l2_size)

    # -- level-1 helpers ----------------------------------------------------

    def _l1_index(self, pc: int) -> int:
        return (pc >> _PC_SHIFT) & self._l1_mask

    def _hash(self, values: list[int]) -> int:
        """The classic select-fold-shift-XOR FCM hash: each value is folded
        to ``context_bits`` bits and injected with a position-dependent
        shift so its contribution ages out after ``order`` insertions."""
        ctx = 0
        for position, value in enumerate(values[-self.order :]):
            ctx ^= fold_value(value, self.context_bits) << position
        return ctx & self._ctx_mask

    def _walk_live(self, entry: list[int], spec: list[tuple[int, int, int]]) -> int:
        """Recompute the (unmasked) live context for an entry from the
        committed fold ring plus the outstanding speculative chain.  Only
        runs when a chain is reconciled at retirement or trained past —
        the predict path reads the running accumulator instead."""
        order = self.order
        depth = len(spec)
        ctx = 0
        position = 0
        if depth < order:
            head = entry[_HEAD]
            for i in range(depth, order):
                ctx ^= entry[_RING + (head + i) % order] << position
                position += 1
            for __, __, fold in spec:
                ctx ^= fold << position
                position += 1
        else:
            for __, __, fold in spec[depth - order :]:
                ctx ^= fold << position
                position += 1
        return ctx

    # -- ValuePredictor interface --------------------------------------------

    def predict(self, pc: int) -> int:
        self.stats.lookups += 1
        entry = self._entries.get((pc >> _PC_SHIFT) & self._l1_mask)
        if entry is None:
            return self._values[0]
        return self._values[entry[_LIVE] & self._ctx_mask]

    def peek(self, pc: int) -> int:
        """:meth:`predict` without touching the lookup statistics (used by
        composite predictors that sample component predictions)."""
        entry = self._entries.get((pc >> _PC_SHIFT) & self._l1_mask)
        if entry is None:
            return self._values[0]
        return self._values[entry[_LIVE] & self._ctx_mask]

    def predict_speculate(self, pc: int) -> tuple[int, int]:
        """Fused predict + speculate sharing one level-1 entry lookup; the
        predicted value's fold is read back from the level-2 fold column,
        so the whole call performs no value folding at all.  The O(1)
        live-context advance is inlined — this is the hottest
        delayed-timing entry point."""
        self.stats.lookups += 1
        index = (pc >> _PC_SHIFT) & self._l1_mask
        entries = self._entries
        entry = entries.get(index)
        if entry is None:
            entry = entries[index] = self._fresh.copy()
        unmasked = entry[0]
        ctx = unmasked & self._ctx_mask
        predicted = self._values[ctx]
        fold = self._value_folds[ctx]
        token = self._next_token
        self._next_token = token + 1
        spec = self._spec.get(index)
        if spec is None:
            spec = self._spec[index] = []
        order = self.order
        depth = len(spec)
        if depth < order:
            oldest = entry[_RING + (entry[_HEAD] + depth) % order]
        else:
            oldest = spec[depth - order][2]
        entry[0] = ((unmasked ^ oldest) >> 1) ^ (fold << (order - 1))
        spec.append((token, predicted, fold))
        return predicted, token

    def speculate(self, pc: int, predicted: int) -> int:
        """Delayed timing: push the prediction onto the speculative history
        and return the token identifying this instance's entry."""
        token = self._next_token
        self._next_token = token + 1
        predicted &= _MASK64
        fold = fold_value(predicted, self.context_bits)
        index = (pc >> _PC_SHIFT) & self._l1_mask
        entries = self._entries
        entry = entries.get(index)
        if entry is None:
            entry = entries[index] = self._fresh.copy()
        spec = self._spec.get(index)
        if spec is None:
            spec = self._spec[index] = []
        order = self.order
        depth = len(spec)
        if depth < order:
            oldest = entry[_RING + (entry[_HEAD] + depth) % order]
        else:
            oldest = spec[depth - order][2]
        entry[_LIVE] = ((entry[_LIVE] ^ oldest) >> 1) ^ (fold << (order - 1))
        spec.append((token, predicted, fold))
        return token

    def train(
        self,
        pc: int,
        actual: int,
        token: object | None = None,
        fold16: int | None = None,
    ) -> None:
        actual &= _MASK64
        if fold16 is not None and self._fold16_ok:
            fold = fold16
        else:
            fold = fold_value(actual, self.context_bits)
        index = (pc >> _PC_SHIFT) & self._l1_mask
        entries = self._entries
        entry = entries.get(index)
        if entry is None:
            entry = entries[index] = self._fresh.copy()
        # The training context is the committed one — the context this
        # instance would have predicted from had the pipeline been empty.
        committed = entry[1]
        ctx = committed & self._ctx_mask
        values = self._values
        counters = self._counters
        if values[ctx] == actual:
            counters[ctx] = 1
        elif counters[ctx]:
            counters[ctx] = 0
        else:
            values[ctx] = actual
            self._value_folds[ctx] = fold
        # Advance the committed ring: the slot at the head holds the oldest
        # value, which ages out of the running context as ``actual`` enters.
        order = self.order
        head = entry[2]
        slot = 3 + head
        committed = ((committed ^ entry[slot]) >> 1) ^ (fold << (order - 1))
        entry[1] = committed
        entry[slot] = fold
        entry[slot + order] = actual
        head += 1
        entry[2] = 0 if head == order else head
        spec_map = self._spec
        if spec_map:
            spec = spec_map.get(index)
            if spec:
                if token is not None:
                    self._consume_speculative(spec, token, actual)
                    if not spec:
                        del spec_map[index]
                        entry[0] = committed
                        return
                entry[0] = self._walk_live(entry, spec)
                return
        entry[0] = committed

    @staticmethod
    def _consume_speculative(
        spec: list[tuple[int, int, int]], token: int, actual: int
    ) -> None:
        for position, (spec_token, spec_value, __) in enumerate(spec):
            if spec_token == token:
                if spec_value == actual:
                    del spec[position]
                else:
                    # Every younger speculative value chained from a wrong
                    # one; the chain re-seeds from committed history.
                    del spec[position:]
                return
            if spec_token > token:
                break
        # Token already squashed by an earlier chain clear: nothing to do.

    def flush_speculative(self, pc: int) -> None:
        index = (pc >> _PC_SHIFT) & self._l1_mask
        if self._spec.pop(index, None):
            entry = self._entries.get(index)
            if entry is not None:
                entry[_LIVE] = entry[_COMMITTED]

    # -- introspection --------------------------------------------------------

    def committed_history(self, pc: int) -> tuple[int, ...]:
        """The committed value history for ``pc`` (tests/debugging)."""
        index = (pc >> _PC_SHIFT) & self._l1_mask
        order = self.order
        entry = self._entries.get(index)
        if entry is None:
            return (0,) * order
        head = entry[_HEAD]
        base = _RING + order
        return tuple(entry[base + (head + i) % order] for i in range(order))

    def speculative_depth(self, pc: int) -> int:
        """Number of outstanding speculative history values for ``pc``."""
        return len(self._spec.get((pc >> _PC_SHIFT) & self._l1_mask, ()))

    def context_of(self, pc: int) -> int:
        """The context the next prediction for ``pc`` would use."""
        entry = self._entries.get((pc >> _PC_SHIFT) & self._l1_mask)
        if entry is None:
            return 0
        return entry[_LIVE] & self._ctx_mask
