"""Tagged, set-associative context predictor tables.

The paper defers "tables configuration, number of ports, hash functions
and replacement"; this variant explores the replacement/tagging corner:
both levels are set-associative with partial tags and LRU replacement, so
small tables degrade by *missing* (no prediction is made) rather than by
silently aliasing onto another instruction's state like the untagged
direct-mapped baseline.

A miss returns ``None`` from :meth:`lookup`; the engine wrapper
:meth:`predict` returns 0 in that case (an always-wrong prediction the
confidence estimator quickly learns to gate), keeping the
:class:`~repro.vp.base.ValuePredictor` interface unchanged.
"""

from __future__ import annotations

from repro.isa.opcodes import INSTRUCTION_BYTES
from repro.vp.base import ValuePredictor
from repro.vp.context import fold_value

_MASK64 = (1 << 64) - 1


class _TaggedSet:
    """One set: tag -> payload, LRU order (index 0 most recent)."""

    __slots__ = ("tags", "payloads")

    def __init__(self) -> None:
        self.tags: list[int] = []
        self.payloads: list = []

    def get(self, tag: int):
        try:
            position = self.tags.index(tag)
        except ValueError:
            return None
        self.tags.insert(0, self.tags.pop(position))
        self.payloads.insert(0, self.payloads.pop(position))
        return self.payloads[0]

    def put(self, tag: int, payload, assoc: int) -> None:
        try:
            position = self.tags.index(tag)
            self.tags.pop(position)
            self.payloads.pop(position)
        except ValueError:
            if len(self.tags) >= assoc:
                self.tags.pop()
                self.payloads.pop()
        self.tags.insert(0, tag)
        self.payloads.insert(0, payload)


class TaggedContextPredictor(ValuePredictor):
    """Set-associative, tagged two-level context predictor.

    Level 1 maps PC -> value history (order values); level 2 maps the
    context hash -> (value, 1-bit counter).  Both levels carry partial
    tags so cross-instruction aliasing is detected instead of silently
    polluting state.
    """

    def __init__(
        self,
        l1_sets_bits: int = 10,
        l2_sets_bits: int = 12,
        assoc: int = 2,
        order: int = 4,
        tag_bits: int = 16,
        context_bits: int = 16,
    ):
        super().__init__()
        if min(l1_sets_bits, l2_sets_bits, assoc, order, tag_bits) <= 0:
            raise ValueError("all geometry parameters must be positive")
        self.assoc = assoc
        self.order = order
        self.context_bits = context_bits
        self._l1_bits = l1_sets_bits
        self._l2_bits = l2_sets_bits
        self._l1_mask = (1 << l1_sets_bits) - 1
        self._l2_mask = (1 << l2_sets_bits) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._l1: dict[int, _TaggedSet] = {}
        self._l2: dict[int, _TaggedSet] = {}
        self.l1_misses = 0
        self.l2_misses = 0

    # -- indexing -----------------------------------------------------------

    def _l1_slot(self, pc: int) -> tuple[_TaggedSet, int]:
        word = pc // INSTRUCTION_BYTES
        index = word & self._l1_mask
        # the tag covers the bits above the index, so set-mates with
        # different PCs always have distinct tags
        tag = (word >> self._l1_bits) & self._tag_mask
        bucket = self._l1.get(index)
        if bucket is None:
            bucket = _TaggedSet()
            self._l1[index] = bucket
        return bucket, tag

    def _context(self, history: tuple[int, ...]) -> int:
        ctx = 0
        for position, value in enumerate(history[-self.order :]):
            ctx ^= fold_value(value, self.context_bits) << position
        return ctx

    def _l2_slot(self, ctx: int) -> tuple[_TaggedSet, int]:
        index = ctx & self._l2_mask
        tag = (ctx >> self._l2_bits) & self._tag_mask
        bucket = self._l2.get(index)
        if bucket is None:
            bucket = _TaggedSet()
            self._l2[index] = bucket
        return bucket, tag

    # -- prediction ------------------------------------------------------------

    def lookup(self, pc: int) -> int | None:
        """Predicted value, or None on a table miss."""
        bucket, tag = self._l1_slot(pc)
        history = bucket.get(tag)
        if history is None:
            self.l1_misses += 1
            return None
        l2_bucket, l2_tag = self._l2_slot(self._context(history))
        payload = l2_bucket.get(l2_tag)
        if payload is None:
            self.l2_misses += 1
            return None
        return payload[0]

    def predict(self, pc: int) -> int:
        self.stats.lookups += 1
        value = self.lookup(pc)
        return 0 if value is None else value

    def speculate(self, pc: int, predicted: int) -> None:
        """Delayed-timing speculative history is not modelled for the
        tagged variant (it exists for table-geometry studies, which run
        under immediate update)."""
        return None

    def train(self, pc: int, actual: int, token: object | None = None) -> None:
        actual &= _MASK64
        bucket, tag = self._l1_slot(pc)
        history = bucket.get(tag)
        if history is None:
            history = (0,) * self.order
        ctx = self._context(history)
        l2_bucket, l2_tag = self._l2_slot(ctx)
        payload = l2_bucket.get(l2_tag)
        if payload is None:
            l2_bucket.put(l2_tag, (actual, 1), self.assoc)
        else:
            value, counter = payload
            if value == actual:
                l2_bucket.put(l2_tag, (value, 1), self.assoc)
            elif counter:
                l2_bucket.put(l2_tag, (value, 0), self.assoc)
            else:
                l2_bucket.put(l2_tag, (actual, 1), self.assoc)
        bucket.put(tag, (history + (actual,))[-self.order :], self.assoc)
