"""Tagged, set-associative context predictor tables.

The paper defers "tables configuration, number of ports, hash functions
and replacement"; this variant explores the replacement/tagging corner:
both levels are set-associative with partial tags and LRU replacement, so
small tables degrade by *missing* (no prediction is made) rather than by
silently aliasing onto another instruction's state like the untagged
direct-mapped baseline.

A miss returns ``None`` from :meth:`lookup`; the engine wrapper
:meth:`predict` returns 0 in that case (an always-wrong prediction the
confidence estimator quickly learns to gate), keeping the
:class:`~repro.vp.base.ValuePredictor` interface unchanged.

Storage: each level is a pair of flat preallocated columns (tags and
payloads) of ``sets * assoc`` slots.  A set is the ``assoc`` consecutive
slots starting at ``set_index * assoc``, kept in LRU order with the most
recent at the slice head; invalid slots carry tag ``-1`` (real tags are
masked non-negative) and gravitate to the slice tail, so fill and
eviction are the same head-insert shift.  Level-1 payloads carry the
value history *and* its precomputed folds, so context hashing is a few
shift-XORs instead of re-folding ``order`` 64-bit values per touch.
"""

from __future__ import annotations

from repro.isa.opcodes import INSTRUCTION_BYTES
from repro.trace.record import FOLD_BITS
from repro.vp.base import ValuePredictor
from repro.vp.context import fold_value

_MASK64 = (1 << 64) - 1
_PC_SHIFT = INSTRUCTION_BYTES.bit_length() - 1
assert 1 << _PC_SHIFT == INSTRUCTION_BYTES


class TaggedContextPredictor(ValuePredictor):
    """Set-associative, tagged two-level context predictor.

    Level 1 maps PC -> value history (order values); level 2 maps the
    context hash -> (value, 1-bit counter).  Both levels carry partial
    tags so cross-instruction aliasing is detected instead of silently
    polluting state.
    """

    def __init__(
        self,
        l1_sets_bits: int = 10,
        l2_sets_bits: int = 12,
        assoc: int = 2,
        order: int = 4,
        tag_bits: int = 16,
        context_bits: int = 16,
    ):
        super().__init__()
        if min(l1_sets_bits, l2_sets_bits, assoc, order, tag_bits) <= 0:
            raise ValueError("all geometry parameters must be positive")
        self.assoc = assoc
        self.order = order
        self.context_bits = context_bits
        self._l1_bits = l1_sets_bits
        self._l2_bits = l2_sets_bits
        self._l1_mask = (1 << l1_sets_bits) - 1
        self._l2_mask = (1 << l2_sets_bits) - 1
        self._tag_mask = (1 << tag_bits) - 1
        # Flat slot columns; tag -1 marks an invalid (never-matching) slot.
        self._l1_tags = [-1] * ((1 << l1_sets_bits) * assoc)
        self._l1_payloads: list = [None] * ((1 << l1_sets_bits) * assoc)
        self._l2_tags = [-1] * ((1 << l2_sets_bits) * assoc)
        self._l2_payloads: list = [None] * ((1 << l2_sets_bits) * assoc)
        self.l1_misses = 0
        self.l2_misses = 0

    # -- set primitives ------------------------------------------------------

    def _set_get(self, tags: list, payloads: list, start: int, tag: int):
        """Payload for ``tag`` within the set at ``start`` (MRU reorder on
        hit), or None.  The hit slot's contents shift to the slice head,
        sliding everything more recent one slot toward the tail."""
        for slot in range(start, start + self.assoc):
            if tags[slot] == tag:
                payload = payloads[slot]
                while slot > start:
                    tags[slot] = tags[slot - 1]
                    payloads[slot] = payloads[slot - 1]
                    slot -= 1
                tags[start] = tag
                payloads[start] = payload
                return payload
        return None

    def _set_put(self, tags: list, payloads: list, start: int, tag: int, payload) -> None:
        """Insert/refresh ``tag`` at the set's MRU position.  An existing
        slot is reused; otherwise the LRU slot (slice tail — which is an
        invalid slot while the set is not yet full) is evicted."""
        slot = start + self.assoc - 1
        for offset in range(self.assoc):
            if tags[start + offset] == tag:
                slot = start + offset
                break
        while slot > start:
            tags[slot] = tags[slot - 1]
            payloads[slot] = payloads[slot - 1]
            slot -= 1
        tags[start] = tag
        payloads[start] = payload

    # -- indexing -----------------------------------------------------------

    def _l1_slot(self, pc: int) -> tuple[int, int]:
        word = pc >> _PC_SHIFT
        # the tag covers the bits above the index, so set-mates with
        # different PCs always have distinct tags
        return (
            (word & self._l1_mask) * self.assoc,
            (word >> self._l1_bits) & self._tag_mask,
        )

    def _context(self, folds: tuple[int, ...]) -> int:
        ctx = 0
        for position, fold in enumerate(folds[-self.order :]):
            ctx ^= fold << position
        return ctx

    def _l2_slot(self, ctx: int) -> tuple[int, int]:
        return (
            (ctx & self._l2_mask) * self.assoc,
            (ctx >> self._l2_bits) & self._tag_mask,
        )

    # -- prediction ------------------------------------------------------------

    def lookup(self, pc: int) -> int | None:
        """Predicted value, or None on a table miss."""
        start, tag = self._l1_slot(pc)
        history = self._set_get(self._l1_tags, self._l1_payloads, start, tag)
        if history is None:
            self.l1_misses += 1
            return None
        l2_start, l2_tag = self._l2_slot(self._context(history[1]))
        payload = self._set_get(self._l2_tags, self._l2_payloads, l2_start, l2_tag)
        if payload is None:
            self.l2_misses += 1
            return None
        return payload[0]

    def predict(self, pc: int) -> int:
        self.stats.lookups += 1
        value = self.lookup(pc)
        return 0 if value is None else value

    def speculate(self, pc: int, predicted: int) -> None:
        """Delayed-timing speculative history is not modelled for the
        tagged variant (it exists for table-geometry studies, which run
        under immediate update)."""
        return None

    def train(
        self,
        pc: int,
        actual: int,
        token: object | None = None,
        fold16: int | None = None,
    ) -> None:
        actual &= _MASK64
        if fold16 is None or self.context_bits != FOLD_BITS:
            fold = fold_value(actual, self.context_bits)
        else:
            fold = fold16
        start, tag = self._l1_slot(pc)
        entry = self._set_get(self._l1_tags, self._l1_payloads, start, tag)
        if entry is None:
            history = (0,) * self.order
            folds = (0,) * self.order
        else:
            history, folds = entry
        l2_start, l2_tag = self._l2_slot(self._context(folds))
        payload = self._set_get(self._l2_tags, self._l2_payloads, l2_start, l2_tag)
        if payload is None:
            new_payload = (actual, 1)
        else:
            value, counter = payload
            if value == actual:
                new_payload = (value, 1)
            elif counter:
                new_payload = (value, 0)
            else:
                new_payload = (actual, 1)
        self._set_put(self._l2_tags, self._l2_payloads, l2_start, l2_tag, new_payload)
        self._set_put(
            self._l1_tags,
            self._l1_payloads,
            start,
            tag,
            (
                (history + (actual,))[-self.order :],
                (folds + (fold,))[-self.order :],
            ),
        )
