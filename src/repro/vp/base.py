"""Value-predictor interface shared by every implementation."""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass
class PredictorStats:
    """Outcome counters for a value predictor."""

    lookups: int = 0
    correct: int = 0
    incorrect: int = 0

    @property
    def resolved(self) -> int:
        return self.correct + self.incorrect

    @property
    def accuracy(self) -> float:
        return self.correct / self.resolved if self.resolved else 0.0


class ValuePredictor(abc.ABC):
    """A PC-indexed predictor of instruction output values.

    The engine drives predictors through three calls, matching the paper's
    two update-timing policies (Section 5.2):

    * :meth:`predict` at dispatch — returns the predicted output value.

    * Under **immediate** (I) timing the engine calls
      ``train(pc, actual)`` right away: internal history advances with the
      correct value and the prediction structures learn instantly.

    * Under **delayed** (D) timing the engine calls
      ``token = speculate(pc, predicted)`` at dispatch — the history is
      updated *speculatively with the prediction* (and never repaired) —
      and ``train(pc, actual, token)`` at retirement, which trains the
      prediction structures using the context that was live at prediction
      time without touching the history again.

    ``record_outcome`` is bookkeeping only (accuracy statistics).
    """

    def __init__(self) -> None:
        self.stats = PredictorStats()

    @abc.abstractmethod
    def predict(self, pc: int) -> int:
        """Predicted output value for the instruction at ``pc``."""

    @abc.abstractmethod
    def speculate(self, pc: int, predicted: int) -> object:
        """Speculatively advance the history for ``pc`` with ``predicted``;
        returns an opaque token to pass back to :meth:`train` at
        retirement."""

    @abc.abstractmethod
    def train(
        self,
        pc: int,
        actual: int,
        token: object | None = None,
        fold16: int | None = None,
    ) -> None:
        """Train with the architecturally correct value.

        ``token=None`` is immediate timing: the history also advances with
        ``actual``.  A token from :meth:`speculate` is delayed timing: only
        the prediction structures are trained (against the saved context);
        the speculatively-updated history is left as is.

        ``fold16`` is an optional precomputed 16-bit XOR-fold of ``actual``
        (``TraceRecord.dest_fold``) — a pure caching hint.  Predictors that
        hash value folds use it when their fold width is 16 bits and must
        recompute otherwise; passing it never changes any result.
        """

    def predict_speculate(self, pc: int) -> tuple[int, object]:
        """Fused :meth:`predict` + :meth:`speculate` (delayed timing's
        dispatch-time pair).  Semantically identical to calling both;
        implementations may override to share the per-PC entry lookup."""
        predicted = self.predict(pc)
        return predicted, self.speculate(pc, predicted)

    def flush_speculative(self, pc: int) -> None:
        """Hook for squash recovery; predictors whose speculative state
        self-corrects (the paper's choice) need not override."""

    def record_outcome(self, correct: bool) -> None:
        if correct:
            self.stats.correct += 1
        else:
            self.stats.incorrect += 1
