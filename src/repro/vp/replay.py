"""Replayable value-prediction columns for the batched engine.

Under the paper's *immediate* (I) update timing with unlimited predictor
ports, the sequence of (predicted value, confidence) outcomes a lane
observes is a pure function of the trace: both ``predict`` and ``train``
run at dispatch, dispatch walks the correct path in trace order, and
wrong-path instructions never touch the predictor.  The outcome column
can therefore be recorded once per (predictor factory, predict-classes)
key and replayed by every lane in a batch that shares the key — the
"predictor state as replicable column groups" piece of the batched
engine (see :mod:`repro.engine.batched` and docs/PERFORMANCE.md §8).

Delayed (D) timing is *not* replayable: training happens at retirement,
so the predict/train interleaving depends on per-lane timing.  The
batched engine simply runs D lanes with ordinary per-lane predictor
instances.
"""

from __future__ import annotations

from typing import Iterable

from repro.trace.record import TraceRecord
from repro.vp.base import ValuePredictor
from repro.vp.confidence import ConfidenceEstimator


def eligible_records(
    rows: list[TraceRecord], predict_classes: str
) -> list[TraceRecord]:
    """The correct-path records the engine consults the predictor for,
    in dispatch (= trace) order.

    Mirrors the dispatch gate in :class:`~repro.engine.pipeline
    .PipelineSimulator` (``writes_register`` plus
    ``_prediction_eligible``); the golden bit-identity tests pin the
    lockstep.
    """
    if predict_classes == "all":
        return [rec for rec in rows if rec.writes_register]
    # Late import: repro.engine.pipeline imports repro.vp modules, but
    # never this one, so the cycle stays open only in source order.
    from repro.engine.pipeline import PipelineSimulator
    from repro.isa.opcodes import OpClass

    if predict_classes == "loads":
        return [rec for rec in rows if rec.writes_register and rec.is_load]
    if predict_classes == "long-latency":
        classes = PipelineSimulator._LONG_LATENCY_CLASSES
        return [
            rec
            for rec in rows
            if rec.writes_register and rec.opclass in classes
        ]
    return [
        rec
        for rec in rows
        if rec.writes_register and rec.opclass is OpClass.IALU
    ]


def record_predictions(
    eligibles: Iterable[TraceRecord], predictor: ValuePredictor
) -> list:
    """Drive a fresh predictor through the immediate-timing call sequence
    and record the predicted-value column."""
    values = []
    append = values.append
    predict = predictor.predict
    train = predictor.train
    for rec in eligibles:
        append(predict(rec.pc))
        train(rec.pc, rec.dest_value, None, rec.dest_fold)
    return values


def record_confidence(
    eligibles: list[TraceRecord],
    values: list,
    estimator: ConfidenceEstimator,
    eq_shift: int,
) -> tuple[bytearray, bytearray]:
    """Drive a fresh confidence estimator through the immediate-timing
    call sequence and record the high-confidence column.

    ``eq_shift`` must match the lane's ``equality_ignore_low_bits`` —
    approximate equality changes the correctness bit the estimator
    learns from, so the column is keyed by it.

    Returns ``(flags, codes)``: ``flags[i]`` is the plain confident bit
    (what :class:`ReplayConfidence` replays), ``codes[i]`` packs the
    whole per-record prediction outcome for the engine's fused replay
    dispatch — bit 0 confident, bit 1 prediction counted correct, bit 2
    correct only via the approximate-equality rescue.
    """
    flags = bytearray(len(values))
    codes = bytearray(len(values))
    confident = estimator.confident
    update = estimator.update
    for i, rec in enumerate(eligibles):
        predicted = values[i]
        actual = rec.dest_value
        approx = False
        pred_correct = predicted == actual
        if not pred_correct and eq_shift:
            pred_correct = approx = (
                (predicted >> eq_shift) == ((actual or 0) >> eq_shift)
            )
        conf = 1 if confident(rec.pc, pred_correct) else 0
        flags[i] = conf
        codes[i] = conf | (2 if pred_correct else 0) | (4 if approx else 0)
        update(rec.pc, pred_correct)
    return flags, codes


class ReplayValuePredictor(ValuePredictor):
    """Replays a recorded predicted-value column.

    ``train`` is a no-op (the recording pass already advanced the real
    predictor's state); ``speculate`` raises because replay columns are
    only valid under immediate timing, where the engine never calls it.
    Several lanes may share one ``values`` list — each replayer keeps
    its own cursor and never mutates the column.

    ``codes`` (from :func:`record_confidence`) additionally lets the
    engine take its fused replay dispatch path — one packed-byte read
    per prediction instead of the predict/confident/update call round;
    the generic cursor methods below remain the semantic reference.
    """

    #: Packed outcome column consumed by the engine's fused dispatch.
    replay_codes: bytearray | None = None

    def __init__(self, values: list, codes: bytearray | None = None):
        super().__init__()
        self._values = values
        self.replay_codes = codes
        self._pos = 0

    def predict(self, pc: int) -> int:
        pos = self._pos
        self._pos = pos + 1
        return self._values[pos]

    def speculate(self, pc: int, predicted: int) -> object:
        raise RuntimeError(
            "ReplayValuePredictor is immediate-timing only; delayed "
            "timing must use a live predictor instance"
        )

    def train(
        self,
        pc: int,
        actual: int,
        token: object | None = None,
        fold16: int | None = None,
    ) -> None:
        pass


class ReplayConfidence(ConfidenceEstimator):
    """Replays a recorded high-confidence column (see module docstring)."""

    #: Marks the estimator as replayable to the engine's fused dispatch.
    replay_flags: bytearray | None = None

    def __init__(self, flags: bytearray):
        super().__init__()
        self._flags = flags
        self.replay_flags = flags
        self._pos = 0

    def confident(self, pc: int, prediction_correct: bool) -> bool:
        pos = self._pos
        self._pos = pos + 1
        return self._flags[pos] != 0

    def update(self, pc: int, correct: bool) -> None:
        pass
