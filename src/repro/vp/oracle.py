"""Oracle confidence: perfectly identifies correct predictions.

The paper compares realistic confidence (R) against this oracle (O): with
oracle confidence the processor speculates on every correct prediction and
never on an incorrect one, bounding what better confidence estimation
could buy.
"""

from __future__ import annotations

from repro.vp.confidence import ConfidenceEstimator


class OracleConfidence(ConfidenceEstimator):
    """Confident exactly when the prediction is correct."""

    def confident(self, pc: int, prediction_correct: bool) -> bool:
        return prediction_correct

    def update(self, pc: int, correct: bool) -> None:
        """Oracles have nothing to learn."""
