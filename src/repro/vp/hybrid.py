"""Hybrid (tournament) value predictor — ablation/extension.

Combines a context-based and a stride component with a per-PC chooser of
saturating 2-bit counters, in the spirit of the two-level + stride hybrids
discussed in the follow-on literature.  Not part of the paper's headline
configuration; used by the predictor-comparison bench.
"""

from __future__ import annotations

from repro.isa.opcodes import INSTRUCTION_BYTES
from repro.vp.base import ValuePredictor
from repro.vp.context import ContextValuePredictor
from repro.vp.stride import StridePredictor

_MASK64 = (1 << 64) - 1
_PC_SHIFT = INSTRUCTION_BYTES.bit_length() - 1


class HybridPredictor(ValuePredictor):
    """Chooser-arbitrated context + stride predictor."""

    def __init__(self, table_bits: int = 16, order: int = 4):
        super().__init__()
        self.context = ContextValuePredictor(
            history_bits=table_bits, context_bits=table_bits, order=order
        )
        self.stride = StridePredictor(table_bits=table_bits)
        self._chooser_mask = (1 << table_bits) - 1
        # 2-bit counter; >= 2 selects the context component.
        self._chooser = bytearray([2] * (1 << table_bits))

    def _index(self, pc: int) -> int:
        return (pc >> _PC_SHIFT) & self._chooser_mask

    def predict(self, pc: int) -> int:
        self.stats.lookups += 1
        ctx_pred = self.context.predict(pc)
        stride_pred = self.stride.predict(pc)
        use_context = self._chooser[self._index(pc)] >= 2
        return ctx_pred if use_context else stride_pred

    def speculate(self, pc: int, predicted: int) -> tuple:
        """Both components advance speculatively; the component predictions
        live in the token so the chooser can train at retirement."""
        ctx_pred = self.context.peek(pc)  # peeks are not real lookups
        stride_pred = self.stride.peek(pc)
        ctx_token = self.context.speculate(pc, predicted)
        stride_token = self.stride.speculate(pc, predicted)
        return (ctx_token, stride_token, ctx_pred, stride_pred)

    def train(
        self,
        pc: int,
        actual: int,
        token: object | None = None,
        fold16: int | None = None,
    ) -> None:
        actual &= _MASK64
        if token is None:
            ctx_pred = self.context.peek(pc)
            stride_pred = self.stride.peek(pc)
            self._train_chooser(pc, ctx_pred == actual, stride_pred == actual)
            self.context.train(pc, actual, fold16=fold16)
            self.stride.train(pc, actual, fold16=fold16)
        else:
            ctx_token, stride_token, ctx_pred, stride_pred = token
            self._train_chooser(pc, ctx_pred == actual, stride_pred == actual)
            self.context.train(pc, actual, ctx_token, fold16)
            self.stride.train(pc, actual, stride_token, fold16)

    def _train_chooser(self, pc: int, ctx_right: bool, stride_right: bool) -> None:
        index = self._index(pc)
        counter = self._chooser[index]
        if ctx_right and not stride_right and counter < 3:
            self._chooser[index] = counter + 1
        elif stride_right and not ctx_right and counter > 0:
            self._chooser[index] = counter - 1
