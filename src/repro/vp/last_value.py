"""Last-value predictor [Lipasti et al. 1996] — ablation baseline.

Predicts that an instruction produces the same value as its previous
dynamic instance.  The simplest useful value predictor; the gap between it
and the context-based predictor shows how much context history buys.
"""

from __future__ import annotations

from repro.isa.opcodes import INSTRUCTION_BYTES
from repro.vp.base import ValuePredictor

_MASK64 = (1 << 64) - 1
_PC_SHIFT = INSTRUCTION_BYTES.bit_length() - 1
assert 1 << _PC_SHIFT == INSTRUCTION_BYTES


class LastValuePredictor(ValuePredictor):
    """Direct-mapped table of most recent values, untagged, stored as one
    flat preallocated column (cold entries predict 0, exactly as the
    seed's dict-with-default did).

    Under delayed timing the table is updated speculatively with the
    prediction (which, for a last-value predictor, is a no-op when the
    prediction equals the stored value) and corrected at retirement.
    """

    def __init__(self, table_bits: int = 16):
        super().__init__()
        if table_bits <= 0:
            raise ValueError("table_bits must be positive")
        self._mask = (1 << table_bits) - 1
        self._values = [0] * (1 << table_bits)

    def _index(self, pc: int) -> int:
        return (pc >> _PC_SHIFT) & self._mask

    def predict(self, pc: int) -> int:
        self.stats.lookups += 1
        return self._values[(pc >> _PC_SHIFT) & self._mask]

    def speculate(self, pc: int, predicted: int) -> None:
        self._values[(pc >> _PC_SHIFT) & self._mask] = predicted & _MASK64
        return None

    def train(
        self,
        pc: int,
        actual: int,
        token: object | None = None,
        fold16: int | None = None,
    ) -> None:
        self._values[(pc >> _PC_SHIFT) & self._mask] = actual & _MASK64
