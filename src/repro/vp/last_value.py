"""Last-value predictor [Lipasti et al. 1996] — ablation baseline.

Predicts that an instruction produces the same value as its previous
dynamic instance.  The simplest useful value predictor; the gap between it
and the context-based predictor shows how much context history buys.
"""

from __future__ import annotations

from repro.isa.opcodes import INSTRUCTION_BYTES
from repro.vp.base import ValuePredictor

_MASK64 = (1 << 64) - 1


class LastValuePredictor(ValuePredictor):
    """Direct-mapped table of most recent values, untagged.

    Under delayed timing the table is updated speculatively with the
    prediction (which, for a last-value predictor, is a no-op when the
    prediction equals the stored value) and corrected at retirement.
    """

    def __init__(self, table_bits: int = 16):
        super().__init__()
        if table_bits <= 0:
            raise ValueError("table_bits must be positive")
        self._mask = (1 << table_bits) - 1
        self._values: dict[int, int] = {}

    def _index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & self._mask

    def predict(self, pc: int) -> int:
        self.stats.lookups += 1
        return self._values.get(self._index(pc), 0)

    def speculate(self, pc: int, predicted: int) -> None:
        self._values[self._index(pc)] = predicted & _MASK64
        return None

    def train(self, pc: int, actual: int, token: object | None = None) -> None:
        self._values[self._index(pc)] = actual & _MASK64
