"""Disassembler: renders instructions (or whole programs) back to text."""

from __future__ import annotations

from repro.asm.assembler import Program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import INSTRUCTION_BYTES


def disassemble(instr: Instruction) -> str:
    """Render a single instruction to canonical assembly text."""
    return instr.render()


def disassemble_program(program: Program) -> str:
    """Render an assembled program, one instruction per line with addresses.

    Labels defined in the text segment are re-emitted at their addresses so
    the listing is human-navigable.
    """
    labels_at: dict[int, list[str]] = {}
    for name, address in program.labels.items():
        labels_at.setdefault(address, []).append(name)
    lines: list[str] = []
    address = program.text_base
    for instr in program.instructions:
        for name in sorted(labels_at.get(address, ())):
            lines.append(f"{name}:")
        lines.append(f"  {address:#08x}:  {instr.render()}")
        address += INSTRUCTION_BYTES
    return "\n".join(lines)
