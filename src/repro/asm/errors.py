"""Assembler error type."""

from __future__ import annotations


class AsmError(ValueError):
    """Raised for any assembly-source problem.

    Carries the source line number (1-based) when known so kernel authors
    get actionable diagnostics.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
