"""A two-pass assembler for VSR assembly source.

Supported syntax::

    .text                     # switch to the text segment (default)
    .data                     # switch to the data segment
    .word  v1, v2, ...        # emit 8-byte little-endian words (data segment)
    .space N                  # reserve N zeroed bytes
    .asciiz "text"            # NUL-terminated string
    .align N                  # align to a 2**N boundary
    label:                    # define a label (either segment)
    add rd, rs, rt            # instructions, one per line
    ld  rd, off(rs)
    beq rs, rt, label
    # comment / ; comment

Pseudo-instructions expanded during parsing:

    mv rd, rs        ->  or   rd, rs, r0
    not rd, rs       ->  nor  rd, rs, r0
    neg rd, rs       ->  sub  rd, r0, rs
    la rd, label     ->  li   rd, <address of label>
    ret              ->  jr   ra
    call label       ->  jal  ra, label
    bgt rs, rt, L    ->  blt  rt, rs, L
    ble rs, rt, L    ->  bge  rt, rs, L
    inc rd           ->  addi rd, rd, 1
    dec rd           ->  addi rd, rd, -1

The text segment starts at :data:`TEXT_BASE`, the data segment at
:data:`DATA_BASE`; every instruction occupies 8 bytes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.asm.errors import AsmError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import INSTRUCTION_BYTES, InstrFormat, OpClass, Opcode
from repro.isa.registers import parse_reg

TEXT_BASE = 0x1000
DATA_BASE = 0x100000
STACK_TOP = 0x7FF000

_OPCODES_BY_MNEMONIC = {op.mnemonic: op for op in Opcode}

_PSEUDO_EXPANSIONS = {
    "mv": lambda ops: [("or", [ops[0], ops[1], "r0"])],
    "not": lambda ops: [("nor", [ops[0], ops[1], "r0"])],
    "neg": lambda ops: [("sub", [ops[0], "r0", ops[1]])],
    "la": lambda ops: [("li", [ops[0], ops[1]])],
    "ret": lambda ops: [("jr", ["ra"])],
    "call": lambda ops: [("jal", ["ra", ops[0]])],
    "bgt": lambda ops: [("blt", [ops[1], ops[0], ops[2]])],
    "ble": lambda ops: [("bge", [ops[1], ops[0], ops[2]])],
    "inc": lambda ops: [("addi", [ops[0], ops[0], "1"])],
    "dec": lambda ops: [("addi", [ops[0], ops[0], "-1"])],
}

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


@dataclass
class Program:
    """An assembled program: instruction list plus initial data image."""

    instructions: list[Instruction]
    data: bytes
    labels: dict[str, int]
    entry: int = TEXT_BASE
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    source_lines: dict[int, int] = field(default_factory=dict)

    @property
    def text_size(self) -> int:
        return len(self.instructions) * INSTRUCTION_BYTES

    def instruction_at(self, pc: int) -> Instruction:
        """Fetch the instruction at byte address ``pc``."""
        offset = pc - self.text_base
        if offset % INSTRUCTION_BYTES != 0:
            raise AsmError(f"misaligned pc: {pc:#x}")
        index = offset // INSTRUCTION_BYTES
        if not 0 <= index < len(self.instructions):
            raise AsmError(f"pc outside text segment: {pc:#x}")
        return self.instructions[index]

    def address_of(self, label: str) -> int:
        if label not in self.labels:
            raise AsmError(f"unknown label: {label}")
        return self.labels[label]


@dataclass
class _Line:
    """One parsed instruction awaiting label resolution."""

    mnemonic: str
    operands: list[str]
    source_line: int
    address: int


def _strip_comment(line: str) -> str:
    for marker in ("#", ";", "//"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_int(token: str, line: int) -> int:
    token = token.strip()
    try:
        if token.startswith("'") and token.endswith("'") and len(token) >= 3:
            literal = token[1:-1].encode().decode("unicode_escape")
            if len(literal) != 1:
                raise ValueError
            return ord(literal)
        return int(token, 0)
    except ValueError:
        raise AsmError(f"bad integer literal: {token!r}", line) from None


def _split_operands(rest: str) -> list[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


class _Assembler:
    def __init__(self, source: str):
        self.source = source
        self.labels: dict[str, int] = {}
        self.lines: list[_Line] = []
        self.data = bytearray()
        self.segment = "text"
        self.text_cursor = TEXT_BASE

    # -- pass 1: parse, expand pseudo-ops, lay out segments, collect labels --

    def _define_label(self, name: str, lineno: int) -> None:
        if name in self.labels:
            raise AsmError(f"duplicate label: {name}", lineno)
        if self.segment == "text":
            self.labels[name] = self.text_cursor
        else:
            self.labels[name] = DATA_BASE + len(self.data)

    def _directive(self, name: str, rest: str, lineno: int) -> None:
        if name == ".text":
            self.segment = "text"
        elif name == ".data":
            self.segment = "data"
        elif name == ".word":
            if self.segment != "data":
                raise AsmError(".word only allowed in the data segment", lineno)
            for token in _split_operands(rest):
                value = _parse_int(token, lineno) & ((1 << 64) - 1)
                self.data += value.to_bytes(8, "little")
        elif name == ".space":
            if self.segment != "data":
                raise AsmError(".space only allowed in the data segment", lineno)
            count = _parse_int(rest, lineno)
            if count < 0:
                raise AsmError(".space size must be non-negative", lineno)
            self.data += bytes(count)
        elif name == ".asciiz":
            if self.segment != "data":
                raise AsmError(".asciiz only allowed in the data segment", lineno)
            match = re.match(r'^"(.*)"$', rest.strip())
            if match is None:
                raise AsmError('.asciiz expects a double-quoted string', lineno)
            text = match.group(1).encode().decode("unicode_escape")
            self.data += text.encode("latin-1") + b"\x00"
        elif name == ".align":
            if self.segment != "data":
                raise AsmError(".align only allowed in the data segment", lineno)
            power = _parse_int(rest, lineno)
            boundary = 1 << power
            while len(self.data) % boundary:
                self.data.append(0)
        else:
            raise AsmError(f"unknown directive: {name}", lineno)

    def _add_instruction(self, mnemonic: str, operands: list[str], lineno: int) -> None:
        expander = _PSEUDO_EXPANSIONS.get(mnemonic)
        if expander is not None:
            try:
                expanded = expander(operands)
            except IndexError:
                raise AsmError(
                    f"wrong operand count for pseudo-instruction {mnemonic!r}", lineno
                ) from None
            for real_mnemonic, real_operands in expanded:
                self._add_instruction(real_mnemonic, real_operands, lineno)
            return
        if mnemonic not in _OPCODES_BY_MNEMONIC:
            raise AsmError(f"unknown instruction: {mnemonic!r}", lineno)
        if self.segment != "text":
            raise AsmError("instructions only allowed in the text segment", lineno)
        self.lines.append(_Line(mnemonic, operands, lineno, self.text_cursor))
        self.text_cursor += INSTRUCTION_BYTES

    def _pass1(self) -> None:
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            line = _strip_comment(raw)
            while line:
                match = _LABEL_RE.match(line)
                if match is None:
                    break
                self._define_label(match.group(1), lineno)
                line = line[match.end():].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            head = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            if head.startswith("."):
                self._directive(head, rest, lineno)
            else:
                self._add_instruction(head, _split_operands(rest), lineno)

    # -- pass 2: resolve labels and build Instruction objects ----------------

    def _resolve_value(self, token: str, lineno: int) -> tuple[int, str | None]:
        """Resolve a token that may be a label or an integer literal."""
        token = token.strip()
        if token in self.labels:
            return self.labels[token], token
        return _parse_int(token, lineno), None

    def _build(self, parsed: _Line) -> Instruction:
        opcode = _OPCODES_BY_MNEMONIC[parsed.mnemonic]
        fmt = opcode.format
        ops = parsed.operands
        lineno = parsed.source_line

        def need(count: int) -> None:
            if len(ops) != count:
                raise AsmError(
                    f"{parsed.mnemonic} expects {count} operand(s), got {len(ops)}",
                    lineno,
                )

        def reg(token: str) -> int:
            try:
                return int(parse_reg(token))
            except ValueError as exc:
                raise AsmError(str(exc), lineno) from None

        if fmt is InstrFormat.R:
            need(3)
            return Instruction(opcode, rd=reg(ops[0]), rs=reg(ops[1]), rt=reg(ops[2]))
        if fmt is InstrFormat.I:
            need(3)
            imm, label = self._resolve_value(ops[2], lineno)
            return Instruction(opcode, rd=reg(ops[0]), rs=reg(ops[1]), imm=imm, label=label)
        if fmt is InstrFormat.LI:
            need(2)
            imm, label = self._resolve_value(ops[1], lineno)
            return Instruction(opcode, rd=reg(ops[0]), imm=imm, label=label)
        if fmt is InstrFormat.MEM:
            need(2)
            match = _MEM_OPERAND_RE.match(ops[1].replace(" ", ""))
            if match is None:
                raise AsmError(f"bad memory operand: {ops[1]!r}", lineno)
            offset_token, base_token = match.groups()
            offset, label = self._resolve_value(offset_token, lineno)
            data_reg = reg(ops[0])
            if opcode.opclass is OpClass.STORE:
                return Instruction(
                    opcode, rs=reg(base_token), rt=data_reg, imm=offset, label=label
                )
            return Instruction(
                opcode, rd=data_reg, rs=reg(base_token), imm=offset, label=label
            )
        if fmt is InstrFormat.B:
            need(3)
            target, label = self._resolve_value(ops[2], lineno)
            return Instruction(
                opcode, rs=reg(ops[0]), rt=reg(ops[1]), imm=target, label=label
            )
        if fmt is InstrFormat.BZ:
            need(2)
            target, label = self._resolve_value(ops[1], lineno)
            return Instruction(opcode, rs=reg(ops[0]), imm=target, label=label)
        if fmt is InstrFormat.J:
            need(1)
            target, label = self._resolve_value(ops[0], lineno)
            return Instruction(opcode, imm=target, label=label)
        if fmt is InstrFormat.JL:
            need(2)
            target, label = self._resolve_value(ops[1], lineno)
            return Instruction(opcode, rd=reg(ops[0]), imm=target, label=label)
        if fmt is InstrFormat.JR:
            need(1)
            return Instruction(opcode, rs=reg(ops[0]))
        if fmt is InstrFormat.JLR:
            need(2)
            return Instruction(opcode, rd=reg(ops[0]), rs=reg(ops[1]))
        need(0)
        return Instruction(opcode)

    def assemble(self) -> Program:
        self._pass1()
        instructions: list[Instruction] = []
        source_lines: dict[int, int] = {}
        for parsed in self.lines:
            source_lines[parsed.address] = parsed.source_line
            instructions.append(self._build(parsed))
        entry = self.labels.get("main", TEXT_BASE)
        return Program(
            instructions=instructions,
            data=bytes(self.data),
            labels=dict(self.labels),
            entry=entry,
            source_lines=source_lines,
        )


def assemble(source: str) -> Program:
    """Assemble VSR source text into a :class:`Program`."""
    return _Assembler(source).assemble()
