"""Two-pass assembler and disassembler for the VSR ISA."""

from repro.asm.errors import AsmError
from repro.asm.assembler import Program, assemble
from repro.asm.disassembler import disassemble, disassemble_program

__all__ = ["AsmError", "Program", "assemble", "disassemble", "disassemble_program"]
