"""Cache model tests: geometry, LRU, multi-level recursion, properties."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import Cache
from repro.mem.hierarchy import make_paper_hierarchy
from repro.mem.ports import PortPool


def _tiny_cache(assoc=2, sets=2, block=16, hit=1, miss=10):
    return Cache(
        "T", size_bytes=block * assoc * sets, block_bytes=block, assoc=assoc,
        hit_latency=hit, miss_latency=miss,
    )


def test_geometry_validation():
    with pytest.raises(ValueError):
        Cache("x", 100, 24, 2, 1)  # non-power-of-two block
    with pytest.raises(ValueError):
        Cache("x", 100, 16, 3, 1)  # size not multiple of block*assoc
    with pytest.raises(ValueError):
        Cache("x", 64, 16, 0, 1)
    with pytest.raises(ValueError):
        Cache("x", 64, 16, 2, -1)


def test_cold_miss_then_hit():
    cache = _tiny_cache()
    assert cache.access(0x100) == 11  # hit latency + miss latency
    assert cache.access(0x100) == 1
    assert cache.access(0x10F) == 1  # same block
    assert cache.stats.hits == 2 and cache.stats.misses == 1


def test_lru_eviction_order():
    cache = _tiny_cache(assoc=2, sets=1, block=16)
    a, b, c = 0x000, 0x010, 0x020  # all map to the single set
    cache.access(a)
    cache.access(b)
    cache.access(a)  # a most recent; b is LRU
    cache.access(c)  # evicts b
    assert cache.probe(a)
    assert not cache.probe(b)
    assert cache.probe(c)


def test_probe_does_not_disturb_state():
    cache = _tiny_cache(assoc=2, sets=1, block=16)
    cache.access(0x000)
    cache.access(0x010)
    cache.probe(0x000)  # does NOT refresh LRU
    before = cache.stats.accesses
    cache.access(0x020)  # evicts 0x000 (still LRU despite probe)
    assert not cache.probe(0x000)
    assert cache.stats.accesses == before + 1


def test_next_level_recursion():
    l2 = _tiny_cache(assoc=2, sets=2, hit=5, miss=20)
    l1 = Cache("L1", 64, 16, 2, 1, next_level=l2)
    assert l1.access(0x40) == 1 + 5 + 20  # miss both levels
    assert l1.access(0x40) == 1  # L1 hit
    l1.flush()
    assert l1.access(0x40) == 1 + 5  # L1 miss, L2 hit


def test_write_allocates_and_counts_writebacks():
    cache = _tiny_cache(assoc=1, sets=1, block=16)
    cache.access(0x00, is_write=True)
    assert cache.probe(0x00)
    cache.access(0x10, is_write=True)  # evicts dirty block
    assert cache.stats.writebacks == 1


@given(addresses=st.lists(st.integers(0, 1 << 12), min_size=1, max_size=300))
def test_lru_matches_reference_model(addresses):
    """The cache's residency must match a straightforward reference LRU."""
    block, assoc, sets = 16, 2, 4
    cache = Cache("p", block * assoc * sets, block, assoc, 1, 10)
    reference: dict[int, list[int]] = {s: [] for s in range(sets)}
    for address in addresses:
        blk = address // block
        index = blk % sets
        tags = reference[index]
        hit = blk in tags
        latency = cache.access(address)
        assert (latency == 1) == hit
        if hit:
            tags.remove(blk)
        elif len(tags) >= assoc:
            tags.pop()
        tags.insert(0, blk)
    for address in addresses:
        blk = address // block
        assert cache.probe(address) == (blk in reference[blk % sets])


def test_paper_hierarchy_parameters():
    hierarchy = make_paper_hierarchy()
    assert hierarchy.l1i.size_bytes == 64 << 10
    assert hierarchy.l1i.block_bytes == 32 and hierarchy.l1i.assoc == 4
    assert hierarchy.l1i.hit_latency == 1
    assert hierarchy.l1d.hit_latency == 2
    assert hierarchy.l2.size_bytes == 1 << 20
    assert hierarchy.l2.block_bytes == 64 and hierarchy.l2.assoc == 4
    # L1D cold miss that also misses L2: 2 + 12 + 24 = 38 total
    assert hierarchy.data_access(0x123456, is_write=False) == 38
    # now resident everywhere: hit is 2 cycles
    assert hierarchy.data_access(0x123456, is_write=False) == 2
    # L2 hit after flushing only L1: 2 + 12
    hierarchy.l1d.flush()
    assert hierarchy.data_access(0x123456, is_write=False) == 14


def test_port_pool():
    pool = PortPool(2)
    assert pool.try_acquire(5)
    assert pool.available(5) == 1
    assert pool.try_acquire(5)
    assert not pool.try_acquire(5)
    assert pool.conflicts == 1
    assert pool.try_acquire(6)  # new cycle resets
    assert pool.available(7) == 2
    with pytest.raises(ValueError):
        PortPool(0)
