"""Limit-study tests."""

import pytest

from repro.analysis.limits import limit_study, render_limit_study
from repro.isa.opcodes import Opcode
from repro.trace.record import TraceRecord


def _chain(n):
    records = []
    for i in range(n):
        srcs = (8,) if i else (4,)
        records.append(
            TraceRecord(i, 0x1000 + 8 * i, Opcode.ADD, srcs, 8, i,
                        next_pc=0x1008 + 8 * i)
        )
    return records


def _independent(n):
    return [
        TraceRecord(i, 0x1000 + 8 * i, Opcode.ADD, (), 8 + i % 16, i,
                    next_pc=0x1008 + 8 * i)
        for i in range(n)
    ]


def test_serial_chain_limits():
    points = limit_study(_chain(64), geometries=((16, 4),))
    point = points[0]
    assert point.cycles == 64  # fully serial
    # perfect VP dissolves the chain: bound by window recycling, not deps
    assert point.cycles_perfect_vp < 64 / 2
    assert point.vp_speedup_bound > 2.0


def test_independent_instructions_width_bound():
    points = limit_study(_independent(64), geometries=((64, 4), (64, 16)))
    narrow, wide = points
    assert narrow.cycles >= 64 / 4
    assert wide.cycles < narrow.cycles
    # no register deps: perfect VP changes nothing
    assert narrow.cycles_perfect_vp == narrow.cycles


def test_window_constraint_binds():
    points = limit_study(_independent(64), geometries=((4, 64), (64, 64)))
    small_window, big_window = points
    assert small_window.cycles >= big_window.cycles


def test_memory_edge_not_dissolved():
    trace = [
        TraceRecord(0, 0x1000, Opcode.SD, (29, 4), None, None, 0x2000, 8,
                    None, 0x1008),
        TraceRecord(1, 0x1008, Opcode.LD, (30,), 8, 5, 0x2000, 8, None,
                    0x1010),
    ]
    point = limit_study(trace, geometries=((8, 8),))[0]
    # the load waits for the store even under perfect VP
    assert point.cycles_perfect_vp == point.cycles
    assert point.cycles >= 1 + 1 + 2  # store addr-gen, then load


def test_vp_bound_grows_with_geometry_on_kernel():
    from repro.programs.suite import kernel

    trace = kernel("m88ksim").trace(max_instructions=4000)
    points = limit_study(trace, geometries=((24, 4), (96, 16)))
    assert points[1].vp_speedup_bound >= points[0].vp_speedup_bound - 0.05
    assert points[1].ilp > points[0].ilp


def test_validation():
    with pytest.raises(ValueError):
        limit_study([], geometries=())
    with pytest.raises(ValueError):
        limit_study([], geometries=((0, 4),))


def test_render():
    text = render_limit_study(limit_study(_chain(16)), "chain")
    assert "VP bound" in text and "chain" in text


def test_registry_limit_study():
    from repro.harness.experiments import EXPERIMENTS

    text = EXPERIMENTS["limit-study"].run(
        max_instructions=800, benchmarks=["perl"]
    )
    assert "perl" in text and "VP bound" in text
