"""Base-processor (no value prediction) pipeline timing tests."""

from repro.engine.config import ProcessorConfig
from repro.engine.pipeline import PipelineSimulator
from repro.engine.sim import run_baseline
from repro.isa.opcodes import Opcode
from repro.trace.record import TraceRecord


def _chain(n, latclass=Opcode.ADD):
    """n back-to-back dependent single-output instructions."""
    records = []
    for i in range(n):
        srcs = (8,) if i == 0 else (9 + (i - 1) % 20,)
        records.append(
            TraceRecord(
                i, 0x1000 + 8 * i, latclass, srcs, 9 + i % 20, i + 1,
                next_pc=0x1008 + 8 * i,
            )
        )
    return records


def _independent(n):
    return [
        TraceRecord(i, 0x1000 + 8 * i, Opcode.ADD, (4,), 8 + i % 20, i,
                    next_pc=0x1008 + 8 * i)
        for i in range(n)
    ]


def _cfg(**kwargs):
    defaults = dict(issue_width=4, window_size=24)
    defaults.update(kwargs)
    return ProcessorConfig(**defaults)


def _warm_hierarchy(trace):
    """Pre-warm the I-cache so micro-timing tests see steady-state fetch."""
    from repro.mem.hierarchy import make_paper_hierarchy

    hierarchy = make_paper_hierarchy()
    for rec in trace:
        hierarchy.l1i.access(rec.pc)
    return hierarchy


def _span(trace, config):
    """Cycles from the first issue opportunity to the last retirement,
    the measurement convention of the paper's Figure 1."""
    sim = PipelineSimulator(
        trace,
        config.with_overrides(log_events=True),
        hierarchy=_warm_hierarchy(trace),
    )
    sim.run()
    from repro.core.events import SpecEventKind

    dispatch = min(
        e.cycle for e in sim.log.events if e.kind is SpecEventKind.DISPATCH
    )
    retire = max(e.cycle for e in sim.log.events if e.kind is SpecEventKind.RETIRE)
    return retire - dispatch


def test_empty_trace():
    result = run_baseline([], _cfg())
    assert result.cycles == 0
    assert result.counters.retired == 0


def test_three_chain_is_five_cycles():
    """The paper's Figure 1 reference: 3 dependent instructions take 5
    cycles from issue to full retirement on the base processor."""
    assert _span(_chain(3), _cfg()) == 5


def test_dependent_chain_serializes():
    span10 = _span(_chain(10), _cfg())
    span3 = _span(_chain(3), _cfg())
    assert span10 - span3 == 7  # one cycle per extra chain link


def test_independent_instructions_overlap():
    # 8 independent 1-cycle ops on a 4-wide machine: 2 issue groups
    span = _span(_independent(8), _cfg())
    assert span <= 4  # far less than 8 serial cycles


def test_issue_width_bounds_ipc():
    trace = _independent(400)
    narrow = run_baseline(trace, _cfg(issue_width=4, window_size=24))
    wide = run_baseline(trace, _cfg(issue_width=16, window_size=96))
    assert narrow.counters.ipc <= 4.0 + 1e-9
    assert wide.cycles < narrow.cycles


def test_multicycle_op_latency_visible():
    # mul (3 cycles) chain vs add (1 cycle) chain
    adds = _span(_chain(5, Opcode.ADD), _cfg())
    muls = _span(_chain(5, Opcode.MUL), _cfg())
    assert muls - adds == 5 * 2  # +2 cycles per link


def test_retired_equals_trace_length():
    trace = _independent(123)
    result = run_baseline(trace, _cfg())
    assert result.counters.retired == 123


def test_window_bounds_occupancy():
    trace = _independent(200)
    sim = PipelineSimulator(trace, _cfg(window_size=24))
    counters = sim.run()
    assert counters.window_peak <= 24


def test_retirement_is_in_order():
    config = _cfg(log_events=True)
    # a slow mul early, fast adds after: adds finish first but retire later
    trace = [
        TraceRecord(0, 0x1000, Opcode.MUL, (4,), 8, 1, next_pc=0x1008),
        TraceRecord(1, 0x1008, Opcode.ADD, (5,), 9, 2, next_pc=0x1010),
        TraceRecord(2, 0x1010, Opcode.ADD, (6,), 10, 3, next_pc=0x1018),
    ]
    sim = PipelineSimulator(trace, config)
    sim.run()
    from repro.core.events import SpecEventKind

    retires = {
        e.seq: e.cycle for e in sim.log.events if e.kind is SpecEventKind.RETIRE
    }
    assert retires[0] <= retires[1] <= retires[2]


def test_branch_misprediction_costs_cycles():
    """A data-dependent alternating branch that gshare cannot fully learn
    must cost cycles versus the same trace with all branches not-taken."""

    def branch_trace(pattern):
        records = []
        seq = 0
        pc = 0x1000
        for taken in pattern:
            records.append(
                TraceRecord(seq, pc, Opcode.ADD, (4,), 8, seq, next_pc=pc + 8)
            )
            seq += 1
            pc += 8
            target = pc + 64 if taken else pc + 8
            records.append(
                TraceRecord(
                    seq, pc, Opcode.BNE, (8,), branch_taken=taken, next_pc=target
                )
            )
            seq += 1
            pc = target
        return records

    import random

    rng = random.Random(7)
    noisy = branch_trace([rng.random() < 0.5 for _ in range(120)])
    steady = branch_trace([False] * 120)
    noisy_result = run_baseline(noisy, _cfg())
    steady_result = run_baseline(steady, _cfg())
    assert noisy_result.counters.branch_mispredictions > 0
    assert steady_result.counters.branch_mispredictions < (
        noisy_result.counters.branch_mispredictions
    )
    assert noisy_result.cycles > steady_result.cycles


def test_dcache_port_contention():
    loads = [
        TraceRecord(
            i, 0x1000 + 8 * i, Opcode.LD, (4,), 8 + i % 20, i,
            mem_addr=0x200000 + 64 * i, mem_size=8, next_pc=0x1008 + 8 * i,
        )
        for i in range(100)
    ]
    few_ports = run_baseline(loads, _cfg(dcache_ports=1))
    many_ports = run_baseline(loads, _cfg(dcache_ports=4))
    assert few_ports.cycles > many_ports.cycles
    assert few_ports.counters.dcache_port_conflicts > 0


def test_store_load_forwarding_counted():
    records = [
        TraceRecord(0, 0x1000, Opcode.SD, (29, 4), None, None, 0x300000, 8,
                    None, 0x1008),
        TraceRecord(1, 0x1008, Opcode.LD, (29,), 8, 5, 0x300000, 8, None,
                    0x1010),
    ]
    result = run_baseline(records, _cfg())
    assert result.counters.store_forwards == 1


def test_load_waits_for_prior_store_address():
    """A load cannot access memory before older store addresses resolve."""
    # the store's data operand comes from a slow divide
    records = [
        TraceRecord(0, 0x1000, Opcode.DIV, (4,), 8, 3, next_pc=0x1008),
        TraceRecord(1, 0x1008, Opcode.SD, (29, 8), None, None, 0x300000, 8,
                    None, 0x1010),
        TraceRecord(2, 0x1010, Opcode.LD, (30,), 9, 7, 0x400000, 8, None,
                    0x1018),
    ]
    result = run_baseline(records, _cfg())
    # the load's data arrives only after the 20-cycle divide resolves the
    # store's operands; total must exceed a plain uncontended load's time
    plain = run_baseline([records[2]], _cfg())
    assert result.cycles > plain.cycles + 15
