"""Micro-kernel generator tests: functional correctness and the VP
behaviours each kernel isolates."""

import pytest

from repro.core.model import GREAT_MODEL, SUPER_MODEL
from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_baseline, run_trace
from repro.programs.micro import MICRO_KERNELS, micro_kernel
from repro.trace import trace_program


def _speedup(source, model=SUPER_MODEL, config=None, timing="I"):
    __, trace = trace_program(source, max_instructions=25000)
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    base = run_baseline(trace, config)
    vp = run_trace(trace, config, model, confidence="oracle", update_timing=timing)
    return base.cycles / vp.cycles


@pytest.mark.parametrize("name", sorted(MICRO_KERNELS))
def test_every_micro_kernel_runs(name):
    from repro.func import Machine
    from repro.asm import assemble

    machine = Machine(assemble(micro_kernel(name)))
    machine.run(max_instructions=1_000_000)
    assert machine.halted
    assert len(machine.output) == 1


def test_fib_value_pinned():
    from repro.func import Machine
    from repro.asm import assemble

    machine = Machine(assemble(micro_kernel("fib", n=10)))
    machine.run(max_instructions=1_000_000)
    assert machine.output == [55]


def test_reduction_checksum():
    from repro.func import Machine
    from repro.asm import assemble

    machine = Machine(assemble(micro_kernel("reduction", n=10, op="add")))
    machine.run()
    # acc starts at 1, adds 0..9, 16-bit mask applied at the end
    assert machine.output == [(1 + sum(range(10))) & 0xFFFF]


def test_unknown_micro_kernel():
    with pytest.raises(KeyError):
        micro_kernel("quicksort")


def test_parameter_validation():
    with pytest.raises(ValueError):
        micro_kernel("reduction", n=0)
    with pytest.raises(ValueError):
        micro_kernel("reduction", op="sub")
    with pytest.raises(ValueError):
        micro_kernel("periodic_chain", period=0)
    with pytest.raises(ValueError):
        micro_kernel("pointer_chase", nodes=1)
    with pytest.raises(ValueError):
        micro_kernel("fib", n=30)


class TestIsolatedBehaviours:
    """Each micro-kernel isolates a known value-speculation behaviour."""

    def test_periodic_chain_gains_most(self):
        chain = _speedup(micro_kernel("periodic_chain", iterations=150))
        reduction_sp = _speedup(micro_kernel("reduction", n=400))
        assert chain > reduction_sp + 0.05

    def test_reduction_is_vp_immune(self):
        # the accumulator never repeats: VP cannot break the chain
        assert abs(_speedup(micro_kernel("reduction", n=400)) - 1.0) < 0.05

    def test_pointer_chase_benefits(self):
        # constant pointers are perfectly predictable: the walk parallelizes
        sp = _speedup(micro_kernel("pointer_chase", nodes=24, iterations=20))
        assert sp > 1.1

    def test_streaming_gains_through_load_prediction(self):
        # per-element load values repeat across passes: prediction lets
        # dependent arithmetic start before the 3-cycle load returns
        sp = _speedup(micro_kernel("streaming", n=48, passes=5))
        assert sp > 1.2

    def test_fib_recursion_benefits(self):
        sp = _speedup(micro_kernel("fib", n=12))
        assert sp > 1.1
