"""Branch predictor, BTB and RAS tests."""

import pytest

from repro.frontend import (
    BimodalPredictor,
    BranchTargetBuffer,
    GsharePredictor,
    ReturnAddressStack,
)


class TestGshare:
    def test_learns_constant_direction(self):
        # Each update shifts the history, so early updates train different
        # entries; once the history saturates at all-ones the entry for the
        # steady state receives the remaining updates and converges.
        predictor = GsharePredictor()
        pc = 0x1000
        for __ in range(30):
            predictor.update(pc, True)
        assert predictor.predict(pc) is True

    def test_learns_history_correlated_pattern(self):
        # Alternating T/N/T/N: bimodal can't exceed ~50%, gshare converges.
        predictor = GsharePredictor(history_bits=4, table_bits=10)
        correct = 0
        for i in range(400):
            taken = bool(i % 2)
            if predictor.predict(0x1000) == taken:
                correct += 1
            predictor.update(0x1000, taken)
        assert correct > 350

    def test_accuracy_counters(self):
        predictor = GsharePredictor()
        for __ in range(60):
            predictor.update(0x2000, True)
        assert predictor.predictions == 60
        # ~16 warmup mispredicts while the history saturates, then correct
        assert predictor.accuracy > 0.5
        assert predictor.mispredictions > 0

    def test_update_returns_correctness(self):
        predictor = GsharePredictor()
        # counters initialize weakly not-taken: first taken outcome is wrong
        assert predictor.update(0x3000, True) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            GsharePredictor(table_bits=0)

    def test_empty_accuracy_is_one(self):
        assert GsharePredictor().accuracy == 1.0


class TestBimodal:
    def test_learns_bias(self):
        predictor = BimodalPredictor()
        for __ in range(4):
            predictor.update(0x1000, False)
        assert predictor.predict(0x1000) is False

    def test_independent_pcs(self):
        predictor = BimodalPredictor()
        for __ in range(4):
            predictor.update(0x1000, True)
            predictor.update(0x4000 + (1 << 15), False)
        assert predictor.predict(0x1000) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_bits=0)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer()
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000
        assert btb.hits == 1 and btb.misses == 1

    def test_tag_conflict_evicts(self):
        btb = BranchTargetBuffer(entries_bits=4)
        btb.update(0x1000, 0x2000)
        conflicting = 0x1000 + (1 << (4 + 3))  # same index, different tag
        btb.update(conflicting, 0x3000)
        assert btb.lookup(0x1000) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries_bits=0)


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack()
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_depth_bound_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert len(ras) == 2
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)
