"""Workload-analysis tests: predictability, locality, dependence."""

import pytest

from repro.analysis.dependence import analyze_dependence
from repro.analysis.locality import analyze_locality
from repro.analysis.predictability import analyze_predictability
from repro.analysis.report import render_workload_report
from repro.isa.opcodes import Opcode
from repro.trace.record import TraceRecord


def _writer(seq, pc, value, srcs=(4,), dest=8, opcode=Opcode.ADD):
    return TraceRecord(seq, pc, opcode, srcs, dest, value, next_pc=pc + 8)


def _stream(values, pc=0x1000):
    return [_writer(i, pc, v) for i, v in enumerate(values)]


class TestPredictability:
    def test_constant_stream(self):
        report = analyze_predictability(_stream([7] * 20))
        assert report.last_value_rate > 0.9
        assert report.classify_pc(0x1000) == "constant"

    def test_stride_stream(self):
        report = analyze_predictability(_stream(list(range(0, 400, 5))))
        assert report.stride_rate > 0.8
        assert report.last_value_rate < 0.1
        assert report.classify_pc(0x1000) == "stride"

    def test_periodic_stream(self):
        values = [11, 22, 33, 44] * 30
        report = analyze_predictability(_stream(values))
        assert report.fcm_rate > 0.9
        assert report.classify_pc(0x1000) == "periodic"

    def test_random_stream(self):
        def mix(i):
            x = (i * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            return (x ^ (x >> 31)) % (1 << 32)

        values = [mix(i) for i in range(50)]
        report = analyze_predictability(_stream(values))
        assert report.best_rate < 0.2
        assert report.classify_pc(0x1000) == "unpredictable"

    def test_best_of_dominates_components(self):
        values = [1, 2, 3, 4] * 8 + list(range(100, 200, 3))
        report = analyze_predictability(_stream(values))
        assert report.best_rate >= report.last_value_rate
        assert report.best_rate >= report.stride_rate
        assert report.best_rate >= report.fcm_rate

    def test_only_register_writers_counted(self):
        trace = [
            TraceRecord(0, 0x1000, Opcode.SD, (8, 4), None, None, 0x2000, 8,
                        None, 0x1008),
            _writer(1, 0x1008, 5),
        ]
        report = analyze_predictability(trace)
        assert report.total == 2 and report.eligible == 1

    def test_rare_pc_classified(self):
        report = analyze_predictability(_stream([5, 5]))
        assert report.classify_pc(0x1000) == "rare"

    def test_order_validation(self):
        with pytest.raises(ValueError):
            analyze_predictability([], fcm_order=0)

    def test_by_class_breakdown(self):
        from repro.isa.opcodes import OpClass

        trace = _stream([7] * 10) + [
            TraceRecord(10 + i, 0x2000, Opcode.LD, (29,), 9, 3, 0x3000, 8,
                        None, 0x2008)
            for i in range(10)
        ]
        report = analyze_predictability(trace)
        assert OpClass.IALU in report.by_class
        assert OpClass.LOAD in report.by_class
        load_stats = report.by_class[OpClass.LOAD]
        assert load_stats[0] == 10  # count
        assert load_stats[1] > 0.8  # constant load: high last-value rate


class TestLocality:
    def test_constant_has_full_locality(self):
        report = analyze_locality(_stream([7] * 20))
        assert report.window_hit_rates[1] > 0.9
        assert report.constant_pcs == 1
        assert report.mean_distinct_values == 1.0

    def test_periodic_needs_wider_window(self):
        values = [1, 2, 3, 4] * 10
        report = analyze_locality(_stream(values), windows=(1, 4))
        assert report.window_hit_rates[1] < 0.1
        assert report.window_hit_rates[4] > 0.8

    def test_windows_monotone(self):
        values = [(i * 7) % 13 for i in range(120)]
        report = analyze_locality(_stream(values), windows=(1, 4, 16))
        rates = list(report.window_hit_rates.values())
        assert rates == sorted(rates)

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_locality([], windows=())
        with pytest.raises(ValueError):
            analyze_locality([], windows=(0,))


class TestDependence:
    def test_serial_chain(self):
        trace = []
        for i in range(10):
            srcs = (8,) if i else (4,)
            trace.append(_writer(i, 0x1000 + 8 * i, i, srcs=srcs, dest=8))
        report = analyze_dependence(trace)
        assert report.critical_path == 10  # fully serial, 1 cycle each
        assert report.mean_distance == 1.0
        assert report.distance_histogram == {"1": 9}
        # perfect VP dissolves the register chain entirely
        assert report.critical_path_perfect_vp == 1
        assert report.vp_headroom == 10.0

    def test_independent_instructions(self):
        trace = [_writer(i, 0x1000 + 8 * i, i, srcs=(), dest=8 + i % 16)
                 for i in range(10)]
        report = analyze_dependence(trace)
        assert report.critical_path == 1
        assert report.dataflow_ilp == 10.0

    def test_memory_edge_survives_perfect_vp(self):
        trace = [
            TraceRecord(0, 0x1000, Opcode.MUL, (4,), 8, 6, next_pc=0x1008),
            TraceRecord(1, 0x1008, Opcode.SD, (29, 8), None, None, 0x2000, 8,
                        None, 0x1010),
            TraceRecord(2, 0x1010, Opcode.LD, (29,), 9, 6, 0x2000, 8, None,
                        0x1018),
            TraceRecord(3, 0x1018, Opcode.SD, (29, 9), None, None, 0x2008, 8,
                        None, 0x1020),
        ]
        report = analyze_dependence(trace)
        # base chain: mul(3) -> store(1) -> load(3) -> store(1) = 8
        assert report.critical_path == 8
        # perfect VP breaks every register edge (mul->store data and
        # load->store data), but the store->load memory edge remains:
        # store addr-gen (1) -> load addr-gen + access (3) = 4
        assert report.critical_path_perfect_vp == 4

    def test_long_latency_dominates(self):
        trace = [
            TraceRecord(0, 0x1000, Opcode.FDIV, (4,), 8, 2, next_pc=0x1008),
        ]
        report = analyze_dependence(trace)
        assert report.critical_path == 24

    def test_empty_trace(self):
        report = analyze_dependence([])
        assert report.critical_path == 0
        assert report.dataflow_ilp == 0.0


def test_render_workload_report():
    from repro.programs.suite import kernel

    trace = kernel("perl").trace(max_instructions=2000)
    text = render_workload_report(trace, "perl")
    assert "predictability ceilings" in text
    assert "dataflow critical path" in text
    assert "value locality" in text


def test_cli_analyze(capsys):
    from repro.cli import main

    assert main(["analyze", "compress", "--max-instructions", "1500"]) == 0
    out = capsys.readouterr().out
    assert "predictability" in out
