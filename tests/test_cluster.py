"""The fault-tolerant cluster sweep service (repro.cluster).

Three layers of coverage:

* Edges of the building blocks — wire framing (truncated, oversized,
  corrupt frames), the crash-safe journal (torn tail, damaged middle,
  duplicate keys), job content hashing and result serialization.
* The scheduler's protocol behavior against a real socket: unknown
  message types, duplicate results (idempotent, journaled once).
* End-to-end sweeps through real worker subprocesses with injected
  faults — worker SIGKILL mid-sweep, a forced scheduler restart over
  the journal, lease failures, frame corruption, dropped heartbeats,
  attempt-budget exhaustion — every one asserting the repo's tentpole
  invariant: the merged results are bit-identical to ``jobs=1``.
"""

import socket
import struct
import time

import pytest

from repro.cluster import protocol
from repro.cluster.client import (
    ClusterClient,
    ClusterSweepError,
    LocalCluster,
    spawn_worker,
)
from repro.cluster.faults import FaultPlan
from repro.cluster.journal import SweepJournal
from repro.cluster.scheduler import (
    ClusterScheduler,
    SchedulerConfig,
    SchedulerTracer,
    sweep_id_for,
)
from repro.cluster.serial import (
    job_from_blob,
    job_key,
    job_to_blob,
    result_from_wire,
    result_to_wire,
)
from repro.core.model import GREAT_MODEL
from repro.engine.config import ProcessorConfig
from repro.harness.parallel import SimJob, run_jobs

_CONFIG = ProcessorConfig(issue_width=4, window_size=24)
_LIMIT = 400

#: Sub-second supervision so fault recovery keeps test wall time low.
_FAST = dict(
    heartbeat_interval=0.1,
    heartbeat_timeout=1.0,
    lease_timeout=30.0,
    poll_interval=0.05,
    monitor_interval=0.05,
    backoff_base=0.05,
    backoff_cap=0.2,
)


def _grid() -> list[SimJob]:
    jobs = []
    for name in ("compress", "perl"):
        jobs.append(SimJob(name, _CONFIG, None, _LIMIT))
        jobs.append(SimJob(name, _CONFIG, GREAT_MODEL, _LIMIT))
    return jobs


def _counters(results) -> list:
    return [r.counters for r in results]


# -- wire protocol ----------------------------------------------------------


class TestProtocol:
    def _pair(self):
        return socket.socketpair()

    def test_frame_roundtrip(self):
        a, b = self._pair()
        try:
            protocol.send_frame(a, {"type": "ping", "n": 1})
            assert protocol.recv_frame(b) == {"type": "ping", "n": 1}
        finally:
            a.close(), b.close()

    def test_clean_eof_is_none(self):
        a, b = self._pair()
        a.close()
        try:
            assert protocol.recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_payload(self):
        a, b = self._pair()
        frame = protocol.encode_frame({"type": "lease", "worker_id": "w"})
        a.sendall(frame[:-3])
        a.close()
        try:
            with pytest.raises(protocol.TruncatedFrame):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_truncated_header(self):
        a, b = self._pair()
        a.sendall(b"\x00\x00")
        a.close()
        try:
            with pytest.raises(protocol.TruncatedFrame):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_before_payload_read(self):
        a, b = self._pair()
        # Only the 4-byte header is sent: the declared length alone must
        # trigger the rejection (no attempt to read/allocate the payload).
        a.sendall(struct.pack(">I", protocol.MAX_FRAME + 1))
        try:
            with pytest.raises(protocol.OversizedFrame):
                protocol.recv_frame(b)
        finally:
            a.close(), b.close()

    def test_oversized_frame_refused_on_send(self):
        with pytest.raises(protocol.OversizedFrame):
            protocol.encode_frame({"blob": "x" * (protocol.MAX_FRAME + 1)})

    def test_corrupt_payload(self):
        a, b = self._pair()
        payload = b"\xffnot json\xfe"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        try:
            with pytest.raises(protocol.FrameCorrupt):
                protocol.recv_frame(b)
        finally:
            a.close(), b.close()

    def test_non_object_payload(self):
        a, b = self._pair()
        payload = b"[1,2,3]"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        try:
            with pytest.raises(protocol.FrameCorrupt):
                protocol.recv_frame(b)
        finally:
            a.close(), b.close()

    def test_parse_address(self):
        assert protocol.parse_address("127.0.0.1:7787") == ("127.0.0.1", 7787)
        assert protocol.parse_address("localhost:0") == ("localhost", 0)
        with pytest.raises(ValueError):
            protocol.parse_address("no-port-here")

    def test_parse_address_bracketed_ipv6(self):
        assert protocol.parse_address("[::1]:9000") == ("::1", 9000)
        assert protocol.parse_address("[2001:db8::2]:7787") == (
            "2001:db8::2", 7787,
        )
        assert protocol.parse_address("[fe80::1%eth0]:80") == (
            "fe80::1%eth0", 80,
        )

    def test_parse_address_bad_bracketed_forms(self):
        for text in ("[::1]", "[::1]:", "[::1]:abc", "[]:9000",
                     "[::1:9000", "[::1]9000"):
            with pytest.raises(ValueError):
                protocol.parse_address(text)


# -- job identity and serialization ----------------------------------------


class TestSerial:
    def test_job_key_stable_and_content_sensitive(self):
        a = SimJob("compress", _CONFIG, GREAT_MODEL, _LIMIT)
        b = SimJob("compress", _CONFIG, GREAT_MODEL, _LIMIT)
        assert job_key(a) == job_key(b)
        assert job_key(a) != job_key(SimJob("perl", _CONFIG, GREAT_MODEL, _LIMIT))
        assert job_key(a) != job_key(SimJob("compress", _CONFIG, None, _LIMIT))
        assert job_key(a) != job_key(SimJob("compress", _CONFIG, GREAT_MODEL, 999))

    def test_job_key_distinguishes_factory_arguments(self):
        from functools import partial

        from repro.vp.confidence import ResettingConfidenceEstimator

        two = SimJob(
            "compress", _CONFIG, GREAT_MODEL, _LIMIT,
            confidence=partial(ResettingConfidenceEstimator, counter_bits=2),
        )
        three = SimJob(
            "compress", _CONFIG, GREAT_MODEL, _LIMIT,
            confidence=partial(ResettingConfidenceEstimator, counter_bits=3),
        )
        assert job_key(two) != job_key(three)

    def test_blob_roundtrip(self):
        job = SimJob("compress", _CONFIG, GREAT_MODEL, _LIMIT)
        assert job_from_blob(job_to_blob(job)) == job

    def test_result_wire_roundtrip_is_exact(self):
        import json

        result = run_jobs([SimJob("compress", _CONFIG, GREAT_MODEL, _LIMIT)])[0]
        # Through actual JSON text, like the wire and the journal.
        restored = result_from_wire(json.loads(json.dumps(result_to_wire(result))))
        assert restored.counters == result.counters
        assert restored.config == result.config
        assert restored.model_name == result.model_name
        assert restored.confidence_kind == result.confidence_kind
        assert restored.update_timing == result.update_timing
        assert restored.extra == result.extra

    def test_sweep_id_deterministic(self):
        keys = [job_key(j) for j in _grid()]
        assert sweep_id_for(keys) == sweep_id_for(list(keys))
        assert sweep_id_for(keys) != sweep_id_for(keys[:-1])


# -- the journal ------------------------------------------------------------


class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.append("k1", {"cycles": 10}, attempt=1, worker="w1")
            journal.append("k2", {"cycles": 20}, attempt=2, worker="w2")
        replayed = SweepJournal(path).replay()
        assert set(replayed) == {"k1", "k2"}
        assert replayed["k1"]["result"] == {"cycles": 10}
        assert replayed["k2"]["attempt"] == 2

    def test_missing_file_is_empty_sweep(self, tmp_path):
        journal = SweepJournal(tmp_path / "absent.jsonl")
        assert journal.replay() == {}
        assert journal.records() == []

    def test_duplicate_keys_first_wins(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.append("k1", {"cycles": 10})
            journal.append("k1", {"cycles": 10})
        replayed = SweepJournal(path).replay()
        assert list(replayed) == ["k1"]

    def test_torn_final_record_dropped_and_resumable(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.append("k1", {"cycles": 10})
            journal.append("k2", {"cycles": 20})
        # Crash mid-append: the last record loses its tail bytes.
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        resumed = SweepJournal(path)
        assert set(resumed.replay()) == {"k1"}
        assert resumed.discarded == 0  # torn tail is expected, not damage
        # Resuming the writer truncates the torn bytes before appending.
        resumed.append("k3", {"cycles": 30})
        resumed.close()
        assert set(SweepJournal(path).replay()) == {"k1", "k3"}

    def test_torn_record_without_newline_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.append("k1", {"cycles": 10})
        with open(path, "ab") as fh:
            fh.write(b'{"key": "k2", "unterminated')  # no newline
        assert set(SweepJournal(path).replay()) == {"k1"}

    def test_damaged_middle_stops_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.append("k1", {"cycles": 10})
            journal.append("k2", {"cycles": 20})
            journal.append("k3", {"cycles": 30})
        lines = path.read_bytes().split(b"\n")
        # Flip bytes inside the middle record: CRC no longer matches.
        lines[1] = lines[1][:12] + b"XX" + lines[1][14:]
        path.write_bytes(b"\n".join(lines))
        damaged = SweepJournal(path)
        assert set(damaged.replay()) == {"k1"}
        assert damaged.discarded == 1  # k3 was intact but after damage
        # The next writer truncates back to the last good record.
        damaged.append("k4", {"cycles": 40})
        damaged.close()
        assert set(SweepJournal(path).replay()) == {"k1", "k4"}


# -- scheduler protocol behavior -------------------------------------------


class TestSchedulerProtocol:
    def test_unknown_message_type_gets_error_reply(self):
        with ClusterScheduler(SchedulerConfig(**_FAST)) as scheduler:
            with protocol.connect(scheduler.address) as sock:
                reply = protocol.request(sock, {"type": "frobnicate"})
        assert reply["type"] == "error"
        assert "unknown-message-type" in reply["reason"]

    def test_corrupt_frame_answered_then_service_stays_up(self):
        with ClusterScheduler(SchedulerConfig(**_FAST)) as scheduler:
            with protocol.connect(scheduler.address) as sock:
                payload = b"garbage"
                sock.sendall(struct.pack(">I", len(payload)) + payload)
                reply = protocol.recv_frame(sock)
                assert reply["type"] == "error"
            # The bad connection was dropped; a fresh one still works.
            with protocol.connect(scheduler.address) as sock:
                reply = protocol.request(sock, {"type": "status"})
                assert reply["type"] == "status"

    def test_duplicate_result_idempotent_and_journaled_once(self, tmp_path):
        job = SimJob("compress", _CONFIG, None, _LIMIT)
        key = job_key(job)
        wire = result_to_wire(run_jobs([job])[0])
        journal_path = tmp_path / "journal.jsonl"
        config = SchedulerConfig(journal_path=journal_path, **_FAST)
        with ClusterScheduler(config) as scheduler:
            with protocol.connect(scheduler.address) as sock:
                protocol.request(sock, {
                    "type": "submit",
                    "jobs": [{"key": key, "blob": job_to_blob(job)}],
                })
                protocol.request(sock, {"type": "register", "worker_id": "w1"})
                lease = protocol.request(sock, {"type": "lease",
                                                "worker_id": "w1"})
                assert lease["type"] == "job" and lease["key"] == key
                report = {"type": "result", "worker_id": "w1", "key": key,
                          "attempt": 1, "ok": True, "result": wire}
                first = protocol.request(sock, report)
                duplicate = protocol.request(sock, dict(report, attempt=2))
        assert first["type"] == "ok" and "duplicate" not in first
        assert duplicate["type"] == "ok" and duplicate["duplicate"] is True
        assert [r["key"] for r in SweepJournal(journal_path).records()] == [key]


# -- end-to-end sweeps with injected faults --------------------------------


class TestClusterSweeps:
    def test_cluster_backend_bit_identical_to_serial(self):
        grid = _grid()
        serial = run_jobs(grid, jobs=1)
        clustered = run_jobs(grid, jobs=2, backend="cluster")
        assert _counters(clustered) == _counters(serial)
        assert [r.cycles for r in clustered] == [r.cycles for r in serial]

    def test_worker_killed_mid_sweep(self, tmp_path):
        grid = _grid()
        serial = run_jobs(grid, jobs=1)
        journal_path = tmp_path / "journal.jsonl"
        tracer = SchedulerTracer()
        config = SchedulerConfig(journal_path=journal_path, **_FAST)
        with LocalCluster(
            config,
            workers=2,
            worker_faults={0: FaultPlan(kill_on_lease=1)},
            tracer=tracer,
        ) as cluster:
            results = cluster.client().run(grid, poll=0.05, timeout=120)
        assert _counters(results) == _counters(serial)
        # The kill was detected and the orphaned job requeued.
        assert {"worker-dead", "job-requeued"} & tracer.kinds()
        journaled = [r["key"] for r in SweepJournal(journal_path).records()]
        assert sorted(journaled) == sorted(job_key(j) for j in grid)

    def test_scheduler_restart_resumes_without_recompute(self, tmp_path):
        """The acceptance scenario: kill the scheduler mid-sweep, restart
        it over the same journal, and finish — bit-identical to serial,
        with every pre-restart point replayed from disk, not re-run."""
        grid = _grid()
        serial = run_jobs(grid, jobs=1)
        journal_path = tmp_path / "journal.jsonl"
        first = ClusterScheduler(SchedulerConfig(journal_path=journal_path,
                                                 **_FAST))
        address = first.start()
        workers = [spawn_worker(address, reconnect_deadline=60.0)
                   for _ in range(2)]
        client = ClusterClient(address)
        try:
            client.submit(grid)
            reader = SweepJournal(journal_path)
            deadline = time.monotonic() + 60.0
            while not reader.replay():
                assert time.monotonic() < deadline, "no progress before kill"
                time.sleep(0.05)
            first.stop()  # forced restart: drop all in-memory state
            pre_restart = set(reader.replay())

            second = ClusterScheduler(
                SchedulerConfig(port=address[1], journal_path=journal_path,
                                **_FAST)
            )
            second.start()
            try:
                receipt = client.submit(grid)
                # Every point completed before the restart was replayed
                # from the journal — zero of them recomputed.
                assert receipt["replayed"] >= len(pre_restart)
                results = client.run(grid, poll=0.05, timeout=120)
            finally:
                second.drain()
                for process in workers:
                    process.wait(timeout=30)
                second.stop()
        finally:
            for process in workers:
                if process.poll() is None:
                    process.kill()
                    process.wait()
        assert _counters(results) == _counters(serial)
        # Each key journaled exactly once: completions were never redone
        # and duplicates were never re-acknowledged into the journal.
        journaled = [r["key"] for r in SweepJournal(journal_path).records()]
        assert len(journaled) == len(set(journaled)) == len(grid)
        assert pre_restart <= set(journaled)

    def test_injected_lease_failures_are_retried(self):
        grid = _grid()[:2]
        serial = run_jobs(grid, jobs=1)
        config = SchedulerConfig(faults=FaultPlan(fail_leases=3), **_FAST)
        tracer = SchedulerTracer()
        with LocalCluster(config, workers=1, tracer=tracer) as cluster:
            status = cluster.client().status()
            assert status["type"] == "status"
            results = cluster.client().run(grid, poll=0.05, timeout=120)
        assert _counters(results) == _counters(serial)
        assert "lease-fault-injected" in tracer.kinds()

    def test_corrupt_result_frame_resent_clean(self):
        grid = _grid()[:2]
        serial = run_jobs(grid, jobs=1)
        tracer = SchedulerTracer()
        config = SchedulerConfig(**_FAST)
        with LocalCluster(
            config,
            workers=1,
            worker_faults={0: FaultPlan(corrupt_result=1)},
            tracer=tracer,
        ) as cluster:
            results = cluster.client().run(grid, poll=0.05, timeout=120)
        assert _counters(results) == _counters(serial)
        assert "protocol-error" in tracer.kinds()

    def test_silent_worker_presumed_dead_sweep_still_exact(self):
        # The worker keeps computing but stops heartbeating after its
        # first beat: the scheduler must declare it dead and requeue;
        # its late results are adopted/deduped — never double-counted.
        # The jobs are sized to outlast the (shrunken) heartbeat timeout,
        # since any request a worker makes also proves it alive.
        grid = [
            SimJob("compress", _CONFIG, GREAT_MODEL, 30000),
            SimJob("perl", _CONFIG, GREAT_MODEL, 30000),
        ]
        serial = run_jobs(grid, jobs=1)
        tracer = SchedulerTracer()
        config = SchedulerConfig(**dict(_FAST, heartbeat_timeout=0.2))
        with LocalCluster(
            config,
            workers=1,
            worker_faults={0: FaultPlan(drop_heartbeats_after=1)},
            tracer=tracer,
        ) as cluster:
            results = cluster.client().run(grid, poll=0.05, timeout=120)
        assert _counters(results) == _counters(serial)
        assert "worker-dead" in tracer.kinds()

    def test_attempt_budget_exhaustion_fails_the_sweep(self):
        grid = [
            SimJob("no-such-kernel", _CONFIG, None, _LIMIT),
            SimJob("compress", _CONFIG, None, _LIMIT),
        ]
        config = SchedulerConfig(max_attempts=2, **_FAST)
        with LocalCluster(config, workers=1) as cluster:
            with pytest.raises(ClusterSweepError) as info:
                cluster.client().run(grid, poll=0.05, timeout=120)
        (failure,) = info.value.failures
        assert failure["key"] == job_key(grid[0])
        assert failure["attempts"] == 2
