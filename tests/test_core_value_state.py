"""Value-state lattice tests (paper Section 2.2)."""

from hypothesis import given, strategies as st

from repro.core.value_state import ValueState, merge_states, output_state

_states = st.sampled_from(list(ValueState))


def test_state_predicates():
    assert ValueState.VALID.usable and ValueState.VALID.certain
    assert ValueState.PREDICTED.usable and not ValueState.PREDICTED.certain
    assert ValueState.SPECULATIVE.usable and ValueState.SPECULATIVE.speculative_kind
    assert ValueState.PREDICTED.speculative_kind
    assert not ValueState.INVALID.usable
    assert not ValueState.VALID.speculative_kind


def test_merge_basics():
    assert merge_states([]) is ValueState.VALID
    assert merge_states([ValueState.VALID, ValueState.VALID]) is ValueState.VALID
    assert (
        merge_states([ValueState.VALID, ValueState.PREDICTED])
        is ValueState.SPECULATIVE
    )
    assert (
        merge_states([ValueState.SPECULATIVE, ValueState.VALID])
        is ValueState.SPECULATIVE
    )
    assert (
        merge_states([ValueState.INVALID, ValueState.VALID]) is ValueState.INVALID
    )


@given(states=st.lists(_states, max_size=4))
def test_merge_invalid_dominates(states):
    merged = merge_states(states)
    if ValueState.INVALID in states:
        assert merged is ValueState.INVALID
    elif any(s.speculative_kind for s in states):
        assert merged is ValueState.SPECULATIVE
    else:
        assert merged is ValueState.VALID


@given(states=st.lists(_states, max_size=4))
def test_merge_is_order_insensitive(states):
    assert merge_states(states) is merge_states(list(reversed(states)))


def test_output_state_definitions():
    # "A value is predicted if it is obtained directly from the predictor"
    assert output_state([ValueState.VALID], predicted=True) is ValueState.PREDICTED
    # "...speculative if the result of computation(s) that included a
    # predicted value"
    assert (
        output_state([ValueState.PREDICTED], predicted=False)
        is ValueState.SPECULATIVE
    )
    assert (
        output_state([ValueState.SPECULATIVE, ValueState.VALID], predicted=False)
        is ValueState.SPECULATIVE
    )
    # "...valid if the result of a computation that involved only valid
    # inputs"
    assert output_state([ValueState.VALID], predicted=False) is ValueState.VALID
    assert output_state([], predicted=False) is ValueState.VALID
    assert (
        output_state([ValueState.INVALID], predicted=False) is ValueState.INVALID
    )


@given(states=st.lists(_states, max_size=4))
def test_predicted_output_always_predicted(states):
    assert output_state(states, predicted=True) is ValueState.PREDICTED
