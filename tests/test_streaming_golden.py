"""Exact-mode streaming runs are bit-identical to the in-memory path.

Every golden snapshot (13 main + 24 predictor-path variants) is replayed
through a :class:`ChunkedTrace` with a deliberately small chunk size, so
each workload crosses many chunk boundaries; the counters must match the
committed snapshots bit for bit.  A second group proves the same through
the harness backends — pool, cluster and service workers attaching the
chunked cache entry — against the serial in-memory result.

This is the "streaming changes nothing" guarantee: sampling is the only
mode allowed to approximate, and it is opt-in and labeled.
"""

import json
from dataclasses import fields
from pathlib import Path

import pytest

from repro.asm import assemble
from repro.core.model import GREAT_MODEL
from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_baseline, run_trace
from repro.func import Machine
from repro.programs.micro import micro_kernel
from repro.programs.suite import benchmark_suite
from repro.trace.binary import dumps_trace_chunked, loads_trace_chunked
from repro.trace.capture import capture_trace
from repro.vp.confidence import SaturatingConfidenceEstimator
from repro.vp.hybrid import HybridPredictor
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import StridePredictor
from repro.vp.tagged import TaggedContextPredictor

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SNAPSHOTS = sorted(GOLDEN_DIR.glob("*.json"))
VARIANT_SNAPSHOTS = sorted((GOLDEN_DIR / "variants").glob("*.json"))

MICRO_TRACE_LIMIT = 3000
SPEC_TRACE_LIMIT = 2000

#: Small enough that every golden workload spans multiple chunks.
CHUNK = 389

_CONFIDENCE = {
    "R": lambda: "R",
    "SaturatingConfidenceEstimator": SaturatingConfidenceEstimator,
}
_PREDICTOR = {
    "context": lambda: None,
    "LastValuePredictor": LastValuePredictor,
    "StridePredictor": StridePredictor,
    "HybridPredictor": HybridPredictor,
    "TaggedContextPredictor": TaggedContextPredictor,
}

#: Captured records per workload label, shared across all tests in this
#: module (capture is the expensive part; every test re-chunks cheaply).
_TRACES: dict[str, list] = {}


def counters_dict(counters) -> dict:
    return {
        f.name: getattr(counters, f.name)
        for f in fields(counters)
        if f.name != "extra"
    }


def _records(label: str):
    cached = _TRACES.get(label)
    if cached is not None:
        return cached
    kind, name = label.split("_", 1)
    if kind == "micro":
        machine = Machine(assemble(micro_kernel(name)))
        records = capture_trace(machine, MICRO_TRACE_LIMIT)
    else:
        for spec in benchmark_suite():
            if spec.name == name:
                records = spec.trace(SPEC_TRACE_LIMIT)
                break
        else:
            raise KeyError(label)
    _TRACES[label] = records
    return records


def _chunked(label: str):
    trace = loads_trace_chunked(dumps_trace_chunked(_records(label), CHUNK))
    assert trace.chunk_count > 1  # the test is vacuous on a single chunk
    return trace


@pytest.mark.parametrize("path", SNAPSHOTS, ids=[p.stem for p in SNAPSHOTS])
def test_streaming_counters_match_golden(path):
    assert SNAPSHOTS, "tests/golden/ is empty"
    snapshot = json.loads(path.read_text())
    trace = _chunked(snapshot["workload"])
    assert len(trace) == snapshot["trace_length"]
    config = ProcessorConfig(
        issue_width=snapshot["config"]["issue_width"],
        window_size=snapshot["config"]["window_size"],
    )
    base = run_baseline(trace, config)
    assert counters_dict(base.counters) == snapshot["base"]
    vp = run_trace(
        trace, config, GREAT_MODEL, confidence="R", update_timing="D"
    )
    assert counters_dict(vp.counters) == snapshot["vp"]


@pytest.mark.parametrize(
    "path", VARIANT_SNAPSHOTS, ids=[p.stem for p in VARIANT_SNAPSHOTS]
)
def test_streaming_variant_counters_match_golden(path):
    assert VARIANT_SNAPSHOTS, "tests/golden/variants/ is empty"
    snapshot = json.loads(path.read_text())
    trace = _chunked(snapshot["workload"])
    assert len(trace) == snapshot["trace_length"]
    config = ProcessorConfig(
        issue_width=snapshot["config"]["issue_width"],
        window_size=snapshot["config"]["window_size"],
    )
    result = run_trace(
        trace,
        config,
        GREAT_MODEL,
        confidence=_CONFIDENCE[snapshot["confidence"]](),
        update_timing=snapshot["update_timing"],
        predictor=_PREDICTOR[snapshot["predictor"]](),
    )
    assert counters_dict(result.counters) == snapshot["vp"]


class TestBackendsStreaming:
    """Every execution backend serves v4 cache entries bit-identically.

    The chunk size is forced down so the cached traces are genuinely
    chunked, then the same grid runs serially from memory and through
    each backend; counters must agree exactly.
    """

    @pytest.fixture()
    def fresh_memo(self, monkeypatch):
        from repro.harness import parallel

        monkeypatch.setattr(parallel, "_TRACE_CACHE", {})

    def _grid(self):
        from repro.harness.parallel import SimJob

        config = ProcessorConfig()
        return [
            SimJob("compress", config, None, 1_500),
            SimJob("compress", config, GREAT_MODEL, 1_500),
            SimJob("m88ksim", config, GREAT_MODEL, 1_500),
        ]

    def _reference(self, monkeypatch, tmp_path):
        """The grid run serially with chunking off: pure in-memory."""
        from repro.harness import parallel
        from repro.harness.parallel import run_jobs
        from repro.trace import cache as trace_cache

        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path / "ref"))
        monkeypatch.setenv(trace_cache.CHUNK_ENV_VAR, "off")
        monkeypatch.setattr(parallel, "_TRACE_CACHE", {})
        reference = run_jobs(self._grid(), jobs=1)
        # Switch to a chunked cache for the backend under test.
        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path / "chunked"))
        monkeypatch.setenv(trace_cache.CHUNK_ENV_VAR, "400")
        monkeypatch.setattr(parallel, "_TRACE_CACHE", {})
        return reference

    @pytest.mark.parametrize("backend,jobs", [
        ("local", 1),
        ("local", 2),
        ("cluster", 2),
    ])
    def test_backend_matches_in_memory(
        self, monkeypatch, tmp_path, backend, jobs
    ):
        from repro.harness.parallel import run_jobs

        reference = self._reference(monkeypatch, tmp_path)
        results = run_jobs(self._grid(), jobs=jobs, backend=backend)
        assert [counters_dict(r.counters) for r in results] == [
            counters_dict(r.counters) for r in reference
        ]
        # The cache really is chunked (the premise of the test).
        assert list((tmp_path / "chunked").glob("*.vsrt4"))

    def test_service_backend_matches_in_memory(self, monkeypatch, tmp_path):
        from repro.harness.parallel import run_jobs
        from repro.service.client import ENV_ADDR
        from repro.service.server import ServiceConfig, SimulationService

        reference = self._reference(monkeypatch, tmp_path)
        with SimulationService(ServiceConfig(store=None)) as service:
            host, port = service.address
            monkeypatch.setenv(ENV_ADDR, f"{host}:{port}")
            results = run_jobs(self._grid(), backend="service")
        assert [counters_dict(r.counters) for r in results] == [
            counters_dict(r.counters) for r in reference
        ]
        assert list((tmp_path / "chunked").glob("*.vsrt4"))
