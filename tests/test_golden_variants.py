"""Golden SimCounters regression for the predictor-path variants.

``tests/golden/variants/*.json`` pins the engine/predictor combinations
the 13 main snapshots (``test_golden_counters.py``, great model, D/R,
context predictor) never reach: immediate (I) update timing, saturating
confidence, and the last-value / stride / hybrid / tagged predictor
implementations.  Together with the main suite these snapshots make the
array-backed predictor storage rewrite provably bit-identical on every
update-timing and predictor code path.

Regenerate ONLY for intentional model changes::

    PYTHONPATH=src python scripts/gen_golden_counters.py
"""

import json
from dataclasses import fields
from pathlib import Path

import pytest

from repro.asm import assemble
from repro.core.model import GREAT_MODEL
from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_trace
from repro.func import Machine
from repro.programs.micro import micro_kernel
from repro.programs.suite import benchmark_suite
from repro.trace.capture import capture_trace
from repro.vp.confidence import SaturatingConfidenceEstimator
from repro.vp.hybrid import HybridPredictor
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import StridePredictor
from repro.vp.tagged import TaggedContextPredictor

VARIANT_DIR = Path(__file__).resolve().parent / "golden" / "variants"
SNAPSHOTS = sorted(VARIANT_DIR.glob("*.json"))

MICRO_TRACE_LIMIT = 3000
SPEC_TRACE_LIMIT = 2000

_CONFIDENCE = {
    "R": lambda: "R",
    "SaturatingConfidenceEstimator": SaturatingConfidenceEstimator,
}
_PREDICTOR = {
    "context": lambda: None,
    "LastValuePredictor": LastValuePredictor,
    "StridePredictor": StridePredictor,
    "HybridPredictor": HybridPredictor,
    "TaggedContextPredictor": TaggedContextPredictor,
}


def counters_dict(counters) -> dict:
    return {
        f.name: getattr(counters, f.name)
        for f in fields(counters)
        if f.name != "extra"
    }


def _load_trace(label: str):
    kind, name = label.split("_", 1)
    if kind == "micro":
        machine = Machine(assemble(micro_kernel(name)))
        return capture_trace(machine, MICRO_TRACE_LIMIT)
    for spec in benchmark_suite():
        if spec.name == name:
            return spec.trace(SPEC_TRACE_LIMIT)
    raise KeyError(label)


@pytest.mark.parametrize("path", SNAPSHOTS, ids=[p.stem for p in SNAPSHOTS])
def test_variant_counters_match_golden(path):
    assert SNAPSHOTS, (
        "tests/golden/variants/ is empty — run scripts/gen_golden_counters.py"
    )
    snapshot = json.loads(path.read_text())
    trace = _load_trace(snapshot["workload"])
    assert len(trace) == snapshot["trace_length"]
    config = ProcessorConfig(
        issue_width=snapshot["config"]["issue_width"],
        window_size=snapshot["config"]["window_size"],
    )
    result = run_trace(
        trace,
        config,
        GREAT_MODEL,
        confidence=_CONFIDENCE[snapshot["confidence"]](),
        update_timing=snapshot["update_timing"],
        predictor=_PREDICTOR[snapshot["predictor"]](),
    )
    assert counters_dict(result.counters) == snapshot["vp"]
