"""Tagged set-associative context predictor tests."""

import pytest

from repro.vp.context import ContextValuePredictor
from repro.vp.tagged import TaggedContextPredictor


def _train(predictor, pc, values, repeats=5):
    for __ in range(repeats):
        for value in values:
            predictor.predict(pc)
            predictor.train(pc, value)


class TestTaggedBasics:
    def test_cold_lookup_misses(self):
        predictor = TaggedContextPredictor()
        assert predictor.lookup(0x1000) is None
        assert predictor.predict(0x1000) == 0
        assert predictor.l1_misses >= 1

    def test_learns_constant(self):
        predictor = TaggedContextPredictor()
        _train(predictor, 0x1000, [42])
        assert predictor.lookup(0x1000) == 42

    def test_learns_periodic(self):
        predictor = TaggedContextPredictor()
        values = [10, 20, 30, 40]
        _train(predictor, 0x1000, values, repeats=6)
        correct = 0
        for value in values:
            if predictor.predict(0x1000) == value:
                correct += 1
            predictor.train(0x1000, value)
        assert correct == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            TaggedContextPredictor(assoc=0)
        with pytest.raises(ValueError):
            TaggedContextPredictor(order=0)


class TestTaggingBeatsAliasing:
    def test_aliased_pcs_detected_not_polluted(self):
        """Two PCs that collide in a tiny L1 set must not silently share
        history: the tagged predictor misses (predicting 0), it does not
        return the other instruction's prediction."""
        predictor = TaggedContextPredictor(l1_sets_bits=1, assoc=1)
        # all PCs map to one of 2 sets; assoc 1 => constant eviction
        _train(predictor, 0x1000, [111])
        _train(predictor, 0x1010, [222])
        # 0x1000's entry was evicted by 0x1010 (same set, different tag):
        # the lookup MISSES rather than predicting 222
        assert predictor.lookup(0x1000) in (None, 111)

    def test_untagged_baseline_does_alias(self):
        """The direct-mapped untagged predictor, by contrast, silently
        mixes the two instructions' histories at the same geometry."""
        predictor = ContextValuePredictor(history_bits=1)
        _train(predictor, 0x1000, [111])
        _train(predictor, 0x1010, [222])
        # 0x1000's history was overwritten by 0x1010's values
        assert predictor.committed_history(0x1000)[-1] == 222


class TestLRU:
    def test_associativity_keeps_both(self):
        predictor = TaggedContextPredictor(l1_sets_bits=1, assoc=4)
        _train(predictor, 0x1000, [111])
        _train(predictor, 0x1010, [222])
        assert predictor.lookup(0x1000) == 111
        assert predictor.lookup(0x1010) == 222


def test_engine_integration():
    from repro.core.model import GREAT_MODEL
    from repro.engine.config import ProcessorConfig
    from repro.engine.sim import run_trace
    from repro.programs.suite import kernel

    trace = kernel("m88ksim").trace(max_instructions=2000)
    result = run_trace(
        trace,
        ProcessorConfig(8, 48),
        GREAT_MODEL,
        confidence="R",
        update_timing="I",
        predictor=TaggedContextPredictor(),
    )
    assert result.counters.retired == 2000
    assert result.counters.predictions > 0
