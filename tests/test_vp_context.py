"""Context-based (FCM) value predictor tests."""

import pytest
from hypothesis import given, strategies as st

from repro.vp.context import ContextValuePredictor, fold_value


def _train_sequence(predictor, pc, values, repeats):
    for __ in range(repeats):
        for value in values:
            predictor.predict(pc)
            predictor.train(pc, value)


class TestImmediateTiming:
    def test_learns_constant(self):
        predictor = ContextValuePredictor()
        _train_sequence(predictor, 0x1000, [7], 6)
        assert predictor.predict(0x1000) == 7

    def test_learns_periodic_sequence(self):
        predictor = ContextValuePredictor(order=4)
        values = [10, 20, 30, 40]
        _train_sequence(predictor, 0x1000, values, 4)
        # after warmup every next value is predicted correctly
        correct = 0
        for __ in range(2):
            for value in values:
                if predictor.predict(0x1000) == value:
                    correct += 1
                predictor.train(0x1000, value)
        assert correct == 8

    def test_period_longer_than_order_still_learns(self):
        # period 6 > order 4, but contexts are still distinct per phase
        predictor = ContextValuePredictor(order=4)
        values = [3, 1, 4, 1, 5, 9]
        _train_sequence(predictor, 0x1000, values, 6)
        correct = 0
        for v in values:
            if predictor.predict(0x1000) == v:
                correct += 1
            predictor.train(0x1000, v)
        assert correct >= 5

    def test_counting_sequence_is_unpredictable(self):
        predictor = ContextValuePredictor()
        hits = 0
        for i in range(200):
            if predictor.predict(0x1000) == i:
                hits += 1
            predictor.train(0x1000, i)
        assert hits < 10  # fresh contexts every time

    def test_l2_shared_across_pcs(self):
        """Instructions producing identical sequences share level-2 state
        (the context indexes by value history only)."""
        teacher = 0x1000
        student = 0x80000  # different L1 entry
        predictor = ContextValuePredictor()
        _train_sequence(predictor, teacher, [5, 6, 7, 8], 5)
        # warm the student's history with the same values but do not let
        # its own training matter: one pass to set L1 history
        for value in (5, 6, 7, 8):
            predictor.train(student, value)
        assert predictor.predict(student) == 5  # learned from the teacher


class TestDelayedTiming:
    def test_speculative_history_sustains_correct_chains(self):
        predictor = ContextValuePredictor(order=4)
        values = [10, 20, 30, 40]
        _train_sequence(predictor, 0x1000, values, 5)  # warm committed state
        # now predict 8 in flight before any retire, chained speculatively
        tokens, predictions = [], []
        expected = values * 2
        for v in expected:
            prediction = predictor.predict(0x1000)
            predictions.append(prediction)
            tokens.append(predictor.speculate(0x1000, prediction))
        assert predictions == expected
        # retire them in order
        for token, v in zip(tokens, expected):
            predictor.train(0x1000, v, token)
        assert predictor.speculative_depth(0x1000) == 0

    def test_mispredicted_chain_is_squashed(self):
        predictor = ContextValuePredictor(order=2)
        p1 = predictor.predict(0x1000)
        t1 = predictor.speculate(0x1000, p1)
        p2 = predictor.predict(0x1000)
        t2 = predictor.speculate(0x1000, p2)
        assert predictor.speculative_depth(0x1000) == 2
        predictor.train(0x1000, p1 + 1, t1)  # mismatch: chain dies
        assert predictor.speculative_depth(0x1000) == 0
        predictor.train(0x1000, 5, t2)  # token already squashed: no error

    def test_correct_retire_removes_only_own_entry(self):
        predictor = ContextValuePredictor()
        p1 = predictor.predict(0x1000)
        t1 = predictor.speculate(0x1000, p1)
        p2 = predictor.predict(0x1000)
        predictor.speculate(0x1000, p2)
        predictor.train(0x1000, p1, t1)  # correct
        assert predictor.speculative_depth(0x1000) == 1

    def test_flush_speculative(self):
        predictor = ContextValuePredictor()
        predictor.speculate(0x1000, 1)
        predictor.speculate(0x1000, 2)
        predictor.flush_speculative(0x1000)
        assert predictor.speculative_depth(0x1000) == 0


def test_fold_value():
    assert fold_value(0, 16) == 0
    assert fold_value(0xFFFF, 16) == 0xFFFF
    assert fold_value(0x1_0001, 16) == 0  # chunks XOR out
    assert 0 <= fold_value(0xDEADBEEFCAFEBABE, 16) < (1 << 16)


@given(value=st.integers(0, (1 << 64) - 1), bits=st.integers(1, 32))
def test_fold_value_in_range(value, bits):
    assert 0 <= fold_value(value, bits) < (1 << bits)


def test_committed_history_introspection():
    predictor = ContextValuePredictor(order=3)
    for value in (1, 2, 3, 4):
        predictor.train(0x1000, value)
    assert predictor.committed_history(0x1000) == (2, 3, 4)


def test_validation():
    with pytest.raises(ValueError):
        ContextValuePredictor(order=0)
    with pytest.raises(ValueError):
        ContextValuePredictor(history_bits=0)


def test_stats_lookups():
    predictor = ContextValuePredictor()
    predictor.predict(0x1000)
    predictor.predict(0x1008)
    assert predictor.stats.lookups == 2
