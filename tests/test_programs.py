"""Benchmark-kernel tests: functional correctness pinned, characteristics
within the tuned bands."""

import pytest

from repro.programs import PAPER_TABLE1, benchmark_suite, kernel, kernel_names
from repro.trace import compute_stats

#: Architectural checksums, pinned.  A change here means the kernel's
#: functional behaviour changed — deliberate retuning only.
EXPECTED_OUTPUT = {
    "compress": [64592, 226],
    "gcc": [19800],
    "go": [5358],
    "ijpeg": [17184],
    "m88ksim": [32760],
    "perl": [11382872],
    "vortex": [689040],
    "xlisp": [40],  # the 40 solutions of 7-queens
}


def test_suite_has_the_papers_eight_benchmarks():
    assert kernel_names() == [
        "compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex", "xlisp",
    ]
    assert set(PAPER_TABLE1) == set(kernel_names())


@pytest.mark.parametrize("name", kernel_names())
def test_kernel_functional_checksum(name):
    assert kernel(name).run_functional() == EXPECTED_OUTPUT[name]


@pytest.mark.parametrize("name", kernel_names())
def test_kernel_prediction_eligibility_near_paper(name):
    spec = kernel(name)
    stats = compute_stats(spec.trace())
    measured = 100.0 * stats.prediction_eligible_fraction
    assert abs(measured - spec.paper_predicted_pct) < 6.0, (
        f"{name}: {measured:.1f}% vs paper {spec.paper_predicted_pct}%"
    )


@pytest.mark.parametrize("name", kernel_names())
def test_kernel_trace_is_reasonably_sized(name):
    trace = kernel(name).trace()
    assert 5_000 <= len(trace) <= 200_000


def test_trace_truncation():
    trace = kernel("compress").trace(max_instructions=100)
    assert len(trace) == 100


def test_kernel_lookup():
    assert kernel("gcc").name == "gcc"
    with pytest.raises(KeyError):
        kernel("spice")


def test_suite_order_matches_table1():
    suite = benchmark_suite()
    assert [s.name for s in suite] == kernel_names()
    assert suite[0].paper_dynamic_mil == 103
    assert suite[-1].paper_predicted_pct == 61.7


def test_every_kernel_has_branches_and_memory():
    for spec in benchmark_suite():
        stats = compute_stats(spec.trace(max_instructions=5000))
        assert stats.branches > 0, spec.name
        assert stats.loads > 0, spec.name
        assert stats.stores > 0, spec.name
