"""TraceRecord and capture tests."""

from repro.asm import assemble
from repro.func import Machine
from repro.isa.opcodes import Opcode
from repro.trace import TraceRecord, capture_trace
from repro.trace.capture import iter_trace


def test_record_flags():
    load = TraceRecord(0, 0x1000, Opcode.LD, (8,), 4, 99, 0x2000, 8, None, 0x1008)
    assert load.is_load and load.is_memory and not load.is_store
    assert load.writes_register
    store = TraceRecord(1, 0x1008, Opcode.SD, (8, 4), None, None, 0x2000, 8, None, 0x1010)
    assert store.is_store and not store.writes_register
    branch = TraceRecord(2, 0x1010, Opcode.BNE, (1, 2), branch_taken=True, next_pc=0x1000)
    assert branch.is_branch and branch.is_control
    jump = TraceRecord(3, 0x1018, Opcode.JR, (31,), branch_taken=True, next_pc=0x1000)
    assert jump.is_indirect and jump.is_control and not jump.is_branch


def test_record_equality_and_hash():
    a = TraceRecord(0, 0x1000, Opcode.ADD, (1, 2), 3, 42, next_pc=0x1008)
    b = TraceRecord(0, 0x1000, Opcode.ADD, (1, 2), 3, 42, next_pc=0x1008)
    c = TraceRecord(0, 0x1000, Opcode.ADD, (1, 2), 3, 43, next_pc=0x1008)
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert a != "not a record"  # NotImplemented comparison path


def test_capture_sequencing_and_truncation():
    source = "li r1, 1\nli r2, 2\nli r3, 3\nhalt\n"
    machine = Machine(assemble(source))
    trace = capture_trace(machine, max_instructions=2)
    assert [r.seq for r in trace] == [0, 1]
    assert not machine.halted  # truncated before completion


def test_capture_full_program_includes_halt():
    machine = Machine(assemble("nop\nhalt\n"))
    trace = capture_trace(machine)
    assert len(trace) == 2
    assert trace[-1].opcode is Opcode.HALT
    assert machine.halted


def test_capture_branch_outcomes_and_next_pc():
    source = """
    li r1, 2
    loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
    """
    machine = Machine(assemble(source))
    trace = capture_trace(machine)
    branches = [r for r in trace if r.is_branch]
    assert [r.branch_taken for r in branches] == [True, False]
    assert branches[0].next_pc == trace[1].pc  # taken: back to loop
    assert branches[1].next_pc == branches[1].pc + 8  # fall through


def test_zero_register_never_a_dependence():
    machine = Machine(assemble("add r1, r0, r0\nhalt\n"))
    trace = capture_trace(machine)
    assert trace[0].src_regs == ()
    assert trace[0].writes_register


def test_iter_trace_is_lazy():
    machine = Machine(assemble("nop\nnop\nhalt\n"))
    iterator = iter_trace(machine)
    first = next(iterator)
    assert first.seq == 0
    assert machine.instruction_count == 1
