"""Trace serialization round-trip tests (property-based)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.opcodes import Opcode
from repro.trace import TraceRecord, dumps_trace, loads_trace, read_trace, write_trace
from repro.trace.reader import TraceFormatError

_record = st.builds(
    TraceRecord,
    seq=st.integers(0, 1 << 30),
    pc=st.integers(0, 1 << 40),
    opcode=st.sampled_from(list(Opcode)),
    src_regs=st.lists(st.integers(1, 31), max_size=2).map(tuple),
    dest_reg=st.one_of(st.none(), st.integers(1, 31)),
    dest_value=st.one_of(st.none(), st.integers(0, (1 << 64) - 1)),
    mem_addr=st.one_of(st.none(), st.integers(0, 1 << 40)),
    mem_size=st.one_of(st.none(), st.sampled_from([1, 4, 8])),
    branch_taken=st.one_of(st.none(), st.booleans()),
    next_pc=st.integers(0, 1 << 40),
)


@given(records=st.lists(_record, max_size=40))
def test_dumps_loads_round_trip(records):
    assert loads_trace(dumps_trace(records)) == records


def test_file_round_trip(tmp_path):
    records = [
        TraceRecord(0, 0x1000, Opcode.ADD, (1, 2), 3, 42, next_pc=0x1008),
        TraceRecord(1, 0x1008, Opcode.LD, (8,), 4, 7, 0x2000, 8, None, 0x1010),
    ]
    path = tmp_path / "trace.txt"
    count = write_trace(records, path)
    assert count == 2
    assert read_trace(path) == records


def test_missing_header_rejected():
    with pytest.raises(TraceFormatError, match="header"):
        loads_trace("0 1000 add - - - - - - 1008\n")


def test_wrong_field_count_rejected():
    with pytest.raises(TraceFormatError, match="expected 10 fields"):
        loads_trace("#vsr-trace-v1\n0 1000 add -\n")


def test_unknown_opcode_rejected():
    with pytest.raises(TraceFormatError, match="unknown opcode"):
        loads_trace("#vsr-trace-v1\n0 1000 zap - - - - - - 1008\n")


def test_bad_boolean_rejected():
    with pytest.raises(TraceFormatError, match="bad boolean"):
        loads_trace("#vsr-trace-v1\n0 1000 beq 1,2 - - - - X 1008\n")
