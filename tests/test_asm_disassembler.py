"""Disassembler tests: listings and assemble/disassemble agreement."""

from repro.asm import assemble, disassemble, disassemble_program


def test_disassemble_single():
    program = assemble("add r1, r2, r3\n")
    assert disassemble(program.instructions[0]) == "add r1, r2, r3"


def test_listing_contains_labels_and_addresses():
    listing = disassemble_program(
        assemble("main: nop\nloop: j loop\n")
    )
    assert "main:" in listing
    assert "loop:" in listing
    assert "0x001000" in listing or "0x1000" in listing.replace("0x00", "0x")


def test_reassembling_a_listing_body_round_trips():
    source = """
    main:
        li   r8, 5
        addi r8, r8, -1
        bnez r8, main
        halt
    """
    program = assemble(source)
    # Re-render instructions with labels stripped (absolute targets) and
    # reassemble.
    import dataclasses

    body = "\n".join(
        dataclasses.replace(instr, label=None).render()
        for instr in program.instructions
    )
    program2 = assemble(body)
    assert [i.opcode for i in program2.instructions] == [
        i.opcode for i in program.instructions
    ]
    assert [i.imm for i in program2.instructions] == [
        i.imm for i in program.instructions
    ]
