"""VSRT v4 chunked trace format: round-trips, edges, and cache behavior.

The streaming trace plane's correctness contract has three parts: the
chunked representation is *indistinguishable* from the in-memory one to
every consumer (same records, same seq numbers, same engine results);
chunk boundaries hide no edge cases (empty traces, exact-multiple
lengths, limits landing mid-chunk); and corruption anywhere in a cache
entry is detected at load and heals by regeneration.
"""

import io
import os

import pytest

from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_baseline
from repro.trace.binary import (
    BinaryTraceError,
    ChunkWriter,
    chunk_layout,
    chunked_entry_info,
    dumps_trace_chunked,
    loads_trace_chunked,
    read_trace_chunked,
    sniff_format,
    write_trace_chunked,
)
from repro.trace.columnar import ChunkedTrace, ColumnarTrace, as_columnar
from repro.trace.synthetic import SyntheticTraceConfig, generate_synthetic_trace


def synth(length: int, seed: int = 11):
    return generate_synthetic_trace(
        SyntheticTraceConfig(length=length, seed=seed)
    )


@pytest.fixture
def records():
    return synth(2_500)


class TestRoundTrip:
    def test_file_round_trip(self, records, tmp_path):
        path = tmp_path / "t.vsrt4"
        total = write_trace_chunked(records, path, 400)
        assert total == len(records)
        assert sniff_format(path) == "v4"
        trace = read_trace_chunked(path)
        assert isinstance(trace, ChunkedTrace)
        assert len(trace) == len(records)
        assert list(trace) == records

    def test_buffer_round_trip(self, records):
        data = dumps_trace_chunked(records, 400)
        assert sniff_format(data) == "v4"
        trace = loads_trace_chunked(data)
        assert list(trace) == records

    def test_chunk_geometry(self, records, tmp_path):
        path = tmp_path / "t.vsrt4"
        write_trace_chunked(records, path, 400)
        trace = read_trace_chunked(path)
        assert trace.chunk_count == 7  # 6 * 400 + tail of 100
        assert trace.counts == (400,) * 6 + (100,)
        info = chunked_entry_info(path)
        assert info["records"] == 2_500
        assert info["chunks"] == 7
        assert info["chunk_records"] == [400] * 6 + [100]
        assert info["chunk_bytes"][0] == chunk_layout(400)[1]

    def test_dumps_of_chunked_trace_preserves_chunk_size(self, records):
        trace = loads_trace_chunked(dumps_trace_chunked(records, 300))
        again = loads_trace_chunked(dumps_trace_chunked(trace))
        assert again.chunk_size == 300
        assert again == trace

    def test_seq_is_global_across_chunks(self, records, tmp_path):
        path = tmp_path / "t.vsrt4"
        write_trace_chunked(records, path, 400)
        trace = read_trace_chunked(path)
        for index in (0, 399, 400, 401, 1_234, 2_499):
            assert trace[index].seq == index

    def test_bbvs_one_per_chunk(self, records):
        trace = loads_trace_chunked(dumps_trace_chunked(records, 400))
        bbvs = trace.bbvs()
        assert len(bbvs) == trace.chunk_count
        # Every record lands in some bucket.
        assert [sum(bbv) for bbv in bbvs] == list(trace.counts)


class TestEdges:
    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.vsrt4"
        assert write_trace_chunked([], path, 400) == 0
        trace = read_trace_chunked(path)
        assert len(trace) == 0
        assert trace.chunk_count == 0
        assert list(trace) == []

    def test_exact_multiple_has_no_empty_tail_chunk(self, tmp_path):
        recs = synth(1_200)
        path = tmp_path / "t.vsrt4"
        write_trace_chunked(recs, path, 400)
        trace = read_trace_chunked(path)
        assert trace.chunk_count == 3
        assert trace.counts == (400, 400, 400)
        assert list(trace) == recs

    def test_single_record(self, tmp_path):
        recs = synth(1)
        path = tmp_path / "t.vsrt4"
        write_trace_chunked(recs, path, 400)
        trace = read_trace_chunked(path)
        assert trace.counts == (1,)
        assert list(trace) == recs

    def test_limit_mid_chunk(self, records):
        # A tail chunk shorter than chunk_size round-trips and indexes.
        trace = loads_trace_chunked(dumps_trace_chunked(records, 999))
        assert trace.counts == (999, 999, 502)
        assert trace[2_499] == records[2_499]
        assert trace[-1] == records[-1]

    def test_slicing_and_negative_index(self, records):
        trace = loads_trace_chunked(dumps_trace_chunked(records, 400))
        assert trace[10:13] == records[10:13]
        assert trace[398:402] == records[398:402]  # crosses a boundary
        assert trace[-5] == records[-5]

    def test_equality(self, records):
        trace = loads_trace_chunked(dumps_trace_chunked(records, 400))
        other = loads_trace_chunked(dumps_trace_chunked(records, 300))
        assert trace == records
        assert trace == other  # same records, different chunking
        assert trace == as_columnar(records)
        assert trace != records[:-1]

    def test_writer_rejects_bad_chunk_size(self, tmp_path):
        with pytest.raises(ValueError):
            ChunkWriter(tmp_path / "t.vsrt4", 0)

    def test_to_records_and_as_columnar(self, records):
        trace = loads_trace_chunked(dumps_trace_chunked(records, 400))
        assert trace.to_records() == records
        assert as_columnar(trace) == as_columnar(records)


class TestBoundedMemory:
    def test_lru_keeps_at_most_two_chunks(self, records, tmp_path):
        path = tmp_path / "t.vsrt4"
        write_trace_chunked(records, path, 250)
        trace = read_trace_chunked(path)
        for rec in trace:
            assert len(trace.loaded_chunks) <= 2
        assert rec.seq == len(records) - 1

    def test_rewind_across_boundary_stays_loaded(self, records, tmp_path):
        path = tmp_path / "t.vsrt4"
        write_trace_chunked(records, path, 250)
        trace = read_trace_chunked(path)
        # The engine's misspeculation recovery pattern: step forward
        # into chunk k, then rewind into chunk k-1.
        assert trace[251].seq == 251
        assert trace[249].seq == 249
        assert set(trace.loaded_chunks) == {0, 1}

    def test_writer_buffers_at_most_one_chunk(self, tmp_path):
        writer = ChunkWriter(tmp_path / "t.vsrt4", 100)
        for rec in synth(350):
            writer.append(rec)
            assert writer.buffered <= 100
        writer.close()


class TestCorruption:
    def test_truncated_file_detected(self, records, tmp_path):
        path = tmp_path / "t.vsrt4"
        write_trace_chunked(records, path, 400)
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        with pytest.raises(BinaryTraceError):
            read_trace_chunked(path)

    def test_corrupt_middle_chunk_detected_by_verify(self, records, tmp_path):
        path = tmp_path / "t.vsrt4"
        write_trace_chunked(records, path, 400)
        info = chunked_entry_info(path)
        # Flip a byte inside the third chunk's payload.
        offset = 48 + sum(info["chunk_bytes"][:2]) + 64
        data = bytearray(path.read_bytes())
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(BinaryTraceError):
            read_trace_chunked(path, verify=True)

    def test_corrupt_chunk_detected_lazily_without_verify(
        self, records, tmp_path
    ):
        path = tmp_path / "t.vsrt4"
        write_trace_chunked(records, path, 400)
        info = chunked_entry_info(path)
        offset = 48 + sum(info["chunk_bytes"][:2]) + 64
        data = bytearray(path.read_bytes())
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        trace = read_trace_chunked(path)
        assert trace[0] == records[0]  # chunk 0 is fine
        with pytest.raises(BinaryTraceError):
            trace[900]  # chunk 2 fails its CRC on load

    def test_index_corruption_detected(self, records, tmp_path):
        path = tmp_path / "t.vsrt4"
        write_trace_chunked(records, path, 400)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF  # inside the index block
        path.write_bytes(bytes(data))
        with pytest.raises(BinaryTraceError):
            read_trace_chunked(path)

    def test_corrupt_cache_entry_regenerates(self, monkeypatch, tmp_path):
        """A corrupt middle chunk in a cache entry is a miss: the entry
        is deleted and the next cached_trace call recaptures it."""
        from repro.trace import cache as trace_cache

        from repro.programs.suite import kernel

        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path))
        monkeypatch.setenv(trace_cache.CHUNK_ENV_VAR, "500")
        first = trace_cache.cached_trace("compress", 1_600)
        assert isinstance(first, ChunkedTrace)
        expected = list(first)
        entry = next(tmp_path.glob("*.vsrt4"))
        data = bytearray(entry.read_bytes())
        data[48 + 700] ^= 0xFF  # somewhere in a middle of the chunk data
        entry.write_bytes(bytes(data))
        again = trace_cache.cached_trace("compress", 1_600)
        assert list(again) == expected
        # The regenerated entry must itself be loadable and clean.
        reloaded = trace_cache.load_trace(
            "compress", kernel("compress").source, 1_600
        )
        assert reloaded is not None
        assert list(reloaded) == expected


class TestCacheIntegration:
    def test_short_capture_stays_v3(self, monkeypatch, tmp_path):
        from repro.trace import cache as trace_cache

        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path))
        monkeypatch.setenv(trace_cache.CHUNK_ENV_VAR, "5000")
        trace = trace_cache.cached_trace("compress", 1_000)
        assert isinstance(trace, ColumnarTrace)
        assert list(tmp_path.glob("*.vsrt3"))
        assert not list(tmp_path.glob("*.vsrt4"))

    def test_long_capture_stores_v4(self, monkeypatch, tmp_path):
        from repro.trace import cache as trace_cache

        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path))
        monkeypatch.setenv(trace_cache.CHUNK_ENV_VAR, "600")
        trace = trace_cache.cached_trace("compress", 2_000)
        assert isinstance(trace, ChunkedTrace)
        assert trace.chunk_count == 4
        assert not list(tmp_path.glob("*.vsrt3"))
        assert list(tmp_path.glob("*.vsrt4"))
        # No stray temp files from the streaming capture.
        assert not list(tmp_path.glob(".*tmp"))

    def test_chunking_disabled_stores_v3(self, monkeypatch, tmp_path):
        from repro.trace import cache as trace_cache

        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path))
        monkeypatch.setenv(trace_cache.CHUNK_ENV_VAR, "off")
        trace = trace_cache.cached_trace("compress", 2_000)
        assert isinstance(trace, ColumnarTrace)
        assert list(tmp_path.glob("*.vsrt3"))

    def test_chunk_env_rejects_garbage(self, monkeypatch):
        from repro.trace import cache as trace_cache

        monkeypatch.setenv(trace_cache.CHUNK_ENV_VAR, "many")
        with pytest.raises(ValueError):
            trace_cache.chunk_records()

    def test_cache_info_reports_chunk_breakdown(self, monkeypatch, tmp_path):
        from repro.trace import cache as trace_cache

        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path))
        monkeypatch.setenv(trace_cache.CHUNK_ENV_VAR, "600")
        trace_cache.cached_trace("compress", 2_000)
        monkeypatch.setenv(trace_cache.CHUNK_ENV_VAR, "5000")
        trace_cache.cached_trace("compress", 400)
        info = trace_cache.cache_info()
        assert info["entries"] == 2
        assert info["v3_entries"] == 1
        assert info["v4_entries"] == 1
        (geometry,) = info["chunked"].values()
        assert geometry["records"] == 2_000
        assert geometry["chunks"] == 4

    def test_warm_cache_without_materializing(self, monkeypatch, tmp_path):
        from repro.trace import cache as trace_cache

        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path))
        monkeypatch.setenv(trace_cache.CHUNK_ENV_VAR, "600")
        lengths = trace_cache.warm_cache(["compress"], 2_000)
        assert lengths == {"compress": 2_000}
        assert list(tmp_path.glob("*.vsrt4"))


class TestEngineConsumption:
    def test_engine_identical_on_chunked_trace(self, records):
        config = ProcessorConfig()
        exact = run_baseline(as_columnar(records), config)
        chunked = run_baseline(
            loads_trace_chunked(dumps_trace_chunked(records, 250)), config
        )
        assert exact.counters == chunked.counters


class TestScaleDeterminism:
    """Capture is a pure function of the workload at 10M+ records.

    The whole streaming plane exists for traces this size, so the
    determinism proof runs at that size: two independent streaming
    passes over the same 10M-record synthetic workload must produce
    byte-identical files (same per-chunk CRCs, same index), and a
    shorter pass must be a bit-exact prefix of the longer one.
    """

    @pytest.mark.slow
    def test_ten_million_record_capture_is_deterministic(self, tmp_path):
        from repro.trace.synthetic import iter_synthetic_trace

        config = SyntheticTraceConfig(length=10_000_000, seed=77)
        chunk = 1_000_000
        crcs = {}
        for name in ("a", "b"):
            path = tmp_path / f"{name}.vsrt4"
            with ChunkWriter(path, chunk) as writer:
                writer.extend(iter_synthetic_trace(config))
            assert writer.total == config.length
            trace = read_trace_chunked(path)
            assert trace.chunk_count == 10
            crcs[name] = trace.chunk_crcs()
            del trace
        assert crcs["a"] == crcs["b"]
        assert (tmp_path / "a.vsrt4").read_bytes() == (
            tmp_path / "b.vsrt4"
        ).read_bytes()

        # A 2M-record pass of the same workload is a bit-exact prefix.
        short = SyntheticTraceConfig(length=2_000_000, seed=77)
        with ChunkWriter(tmp_path / "p.vsrt4", chunk) as writer:
            writer.extend(iter_synthetic_trace(short))
        prefix = read_trace_chunked(tmp_path / "p.vsrt4")
        assert prefix.chunk_crcs() == crcs["a"][:2]
