"""Trace transformation tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.opcodes import Opcode
from repro.trace import (
    TraceRecord,
    concatenate,
    loop_region,
    region_of_interest,
    renumber,
    skip_warmup,
)


def _trace(n, base_pc=0x1000):
    return [
        TraceRecord(i, base_pc + 8 * (i % 5), Opcode.ADD, (4,), 8, i,
                    next_pc=0)
        for i in range(n)
    ]


def test_renumber():
    records = renumber(list(reversed(_trace(5))))
    assert [r.seq for r in records] == [0, 1, 2, 3, 4]
    assert records[0].dest_value == 4  # order preserved, seq rewritten


def test_skip_warmup():
    records = skip_warmup(_trace(10), 4)
    assert len(records) == 6
    assert records[0].seq == 0
    assert records[0].dest_value == 4  # original instruction 4

    with pytest.raises(ValueError):
        skip_warmup(_trace(3), -1)


def test_region_of_interest():
    records = region_of_interest(_trace(20), start=5, length=7)
    assert len(records) == 7
    assert [r.dest_value for r in records] == list(range(5, 12))
    with pytest.raises(ValueError):
        region_of_interest(_trace(5), start=-1, length=2)
    with pytest.raises(ValueError):
        region_of_interest(_trace(5), start=0, length=0)


def test_concatenate():
    joined = concatenate(_trace(3), _trace(2))
    assert len(joined) == 5
    assert [r.seq for r in joined] == list(range(5))


def test_loop_region():
    # pcs cycle every 5 instructions: pc base_pc occurs at 0, 5, 10, 15
    records = loop_region(_trace(20), head_pc=0x1000)
    assert records[0].dest_value == 0
    assert records[-1].dest_value == 14  # up to (not incl.) last occurrence

    two_iters = loop_region(_trace(20), head_pc=0x1000, max_iterations=2)
    assert len(two_iters) == 10

    with pytest.raises(ValueError):
        loop_region(_trace(5), head_pc=0x9999)
    with pytest.raises(ValueError):
        loop_region(_trace(20), head_pc=0x1000, max_iterations=0)


def test_sliced_trace_simulates():
    from repro.engine.config import ProcessorConfig
    from repro.engine.sim import run_baseline
    from repro.programs.suite import kernel

    trace = kernel("perl").trace(max_instructions=4000)
    roi = region_of_interest(trace, start=1000, length=1500)
    result = run_baseline(roi, ProcessorConfig(4, 24))
    assert result.counters.retired == 1500


@given(n=st.integers(1, 50), k=st.integers(0, 50))
def test_skip_then_length(n, k):
    records = skip_warmup(_trace(n), min(k, n))
    assert len(records) == n - min(k, n)
    assert [r.seq for r in records] == list(range(len(records)))
