"""Functional machine tests: per-instruction architectural semantics."""

import pytest

from repro.asm import assemble
from repro.asm.assembler import DATA_BASE, STACK_TOP, TEXT_BASE
from repro.func import Machine, MachineError


def run(source: str) -> Machine:
    machine = Machine(assemble(source))
    machine.run()
    return machine


def test_register_arithmetic():
    m = run("li r1, 6\nli r2, 7\nmul r3, r1, r2\nprint r3\nhalt\n")
    assert m.output == [42]


def test_r0_is_hardwired_zero():
    m = run("li r0, 99\nprint r0\nhalt\n")
    assert m.output == [0]


def test_stack_pointer_initialized():
    machine = Machine(assemble("halt\n"))
    assert machine.read_reg(29) == STACK_TOP


def test_load_store_sizes():
    m = run(
        """
        .data
        buf: .space 16
        .text
        li r1, 0x1122334455667788
        la r2, buf
        sd r1, 0(r2)
        ld r3, 0(r2)
        print r3
        lw r4, 0(r2)
        print r4
        lbu r5, 0(r2)
        print r5
        sb r1, 8(r2)
        lbu r6, 8(r2)
        print r6
        sw r1, 8(r2)
        lw r7, 8(r2)
        print r7
        halt
        """
    )
    assert m.output[0] == 0x1122334455667788
    assert m.output[1] == 0x55667788
    assert m.output[2] == 0x88
    assert m.output[3] == 0x88
    assert m.output[4] == 0x55667788


def test_lw_sign_extends():
    m = run(
        """
        .data
        x: .word 0xffffffff
        .text
        la r1, x
        lw r2, 0(r1)
        print r2
        halt
        """
    )
    assert m.output == [(1 << 64) - 1]  # -1 sign-extended


def test_branches_and_loop():
    m = run(
        """
        li r1, 0
        li r2, 10
        loop:
        addi r1, r1, 1
        blt r1, r2, loop
        print r1
        halt
        """
    )
    assert m.output == [10]


def test_jal_links_and_jr_returns():
    m = run(
        """
        main:
        call helper
        print r9
        halt
        helper:
        li r9, 77
        ret
        """
    )
    assert m.output == [77]


def test_jalr_indirect_call():
    m = run(
        """
        la r5, target
        jalr r31, r5
        print r9
        halt
        target:
        li r9, 3
        jr r31
        """
    )
    assert m.output == [3]


def test_data_segment_initialized():
    m = run(
        """
        .data
        x: .word 11, 22
        .text
        la r1, x
        ld r2, 8(r1)
        print r2
        halt
        """
    )
    assert m.output == [22]


def test_step_reports_effects():
    machine = Machine(assemble("li r1, 5\nsd r1, 0(r29)\nhalt\n"))
    step1 = machine.step()
    assert step1.dest_reg == 1 and step1.dest_value == 5
    step2 = machine.step()
    assert step2.mem_addr == STACK_TOP and step2.mem_size == 8
    assert step2.store_value == 5
    step3 = machine.step()
    assert step3.halted
    assert machine.halted


def test_step_after_halt_rejected():
    machine = Machine(assemble("halt\n"))
    machine.run()
    with pytest.raises(MachineError):
        machine.step()


def test_runaway_guard():
    machine = Machine(assemble("loop: j loop\n"))
    with pytest.raises(MachineError, match="budget"):
        machine.run(max_instructions=100)


def test_entry_at_main():
    m = run(
        """
        li r9, 1        # skipped: entry is main
        print r9
        halt
        main:
        li r9, 2
        print r9
        halt
        """
    )
    assert m.output == [2]


def test_instruction_count():
    machine = Machine(assemble("nop\nnop\nhalt\n"))
    machine.run()
    assert machine.instruction_count == 3


def test_layout_constants():
    program = assemble(".data\nx: .word 1\n.text\nhalt\n")
    assert program.text_base == TEXT_BASE
    assert program.labels["x"] == DATA_BASE
