"""Instruction window, station, wakeup and selection tests."""

import pytest

from repro.core.value_state import ValueState
from repro.core.variables import (
    BranchResolution,
    ModelVariables,
    SelectionPolicy,
    WakeupPolicy,
)
from repro.isa.opcodes import Opcode
from repro.trace.record import TraceRecord
from repro.window.ruu import InstructionWindow
from repro.window.selection import select, selection_key
from repro.window.station import Operand, Station
from repro.window.wakeup import can_wake


def _station(sid, opcode=Opcode.ADD, srcs=(1,), dest=8):
    rec = TraceRecord(sid, 0x1000 + 8 * sid, opcode, srcs, dest, 1, next_pc=0)
    station = Station(sid, rec)
    for i, reg in enumerate(srcs):
        station.add_operand(Operand(reg, None))
    return station


def _replace_operand(station, index, operand):
    station.operands[index] = operand
    station.in_dirty = True


class TestOperand:
    def test_regfile_operand_starts_valid(self):
        operand = Operand(3, None)
        assert operand.state is ValueState.VALID
        assert operand.ready and operand.correct

    def test_pending_operand_is_invalid(self):
        operand = Operand(3, producer_sid=7)
        assert operand.state is ValueState.INVALID

    def test_deliver_prediction(self):
        operand = Operand(3, producer_sid=7)
        operand.deliver(taints=1 << 7, correct=True, cycle=5, from_prediction=True)
        assert operand.state is ValueState.PREDICTED

    def test_deliver_speculative(self):
        operand = Operand(3, producer_sid=7)
        operand.deliver(taints=1 << 2, correct=True, cycle=5, from_prediction=False)
        assert operand.state is ValueState.SPECULATIVE

    def test_clear_taint_upgrades_to_valid(self):
        operand = Operand(3, producer_sid=7)
        operand.deliver(taints=1 << 7, correct=True, cycle=5, from_prediction=True)
        assert operand.clear_taint(1 << 7, cycle=9)
        assert operand.state is ValueState.VALID
        assert operand.valid_cycle == 9 and operand.via_network

    def test_clear_taint_partial(self):
        operand = Operand(3, producer_sid=7)
        operand.deliver(taints=(1 << 7) | (1 << 8), correct=True, cycle=5, from_prediction=False)
        assert not operand.clear_taint(1 << 7, cycle=9)
        assert operand.state is ValueState.SPECULATIVE

    def test_reset_pending(self):
        operand = Operand(3, producer_sid=7)
        operand.deliver(taints=1 << 7, correct=True, cycle=5, from_prediction=True)
        operand.reset_pending()
        assert operand.state is ValueState.INVALID


class TestWindow:
    def test_insert_order_enforced(self):
        window = InstructionWindow(4)
        window.insert(_station(1))
        with pytest.raises(ValueError, match="out of order"):
            window.insert(_station(0))

    def test_capacity(self):
        window = InstructionWindow(2)
        window.insert(_station(0))
        window.insert(_station(1))
        assert window.full and window.free_slots == 0
        with pytest.raises(RuntimeError, match="full"):
            window.insert(_station(2))
        with pytest.raises(ValueError):
            InstructionWindow(0)

    def test_head_and_release(self):
        window = InstructionWindow(4)
        for sid in range(3):
            window.insert(_station(sid))
        assert window.head().sid == 0
        released = window.release_head()
        assert released.sid == 0
        assert window.head().sid == 1
        assert len(window) == 2

    def test_release_empty_rejected(self):
        with pytest.raises(RuntimeError, match="empty"):
            InstructionWindow(2).release_head()

    def test_squash_younger_than(self):
        window = InstructionWindow(8)
        for sid in range(5):
            window.insert(_station(sid))
        removed = window.squash_younger_than(2)
        assert [s.sid for s in removed] == [4, 3]  # youngest first
        assert [s.sid for s in window] == [0, 1, 2]

    def test_oldest(self):
        window = InstructionWindow(8)
        for sid in range(5):
            window.insert(_station(sid))
        assert [s.sid for s in window.oldest(2)] == [0, 1]

    def test_peak_occupancy(self):
        window = InstructionWindow(4)
        for sid in range(3):
            window.insert(_station(sid))
        window.release_head()
        assert window.peak_occupancy == 3


class TestWakeup:
    VARS = ModelVariables()

    def test_ready_valid_operands_wake(self):
        station = _station(0)
        assert can_wake(station, self.VARS, cycle=1)

    def test_issued_station_does_not_wake(self):
        station = _station(0)
        station.issued = True
        assert not can_wake(station, self.VARS, cycle=1)

    def test_min_issue_cycle_respected(self):
        station = _station(0)
        station.min_issue_cycle = 5
        assert not can_wake(station, self.VARS, cycle=4)
        assert can_wake(station, self.VARS, cycle=5)

    def test_speculative_operand_wakes_under_paper_policy(self):
        station = _station(0, srcs=(1,))
        _replace_operand(station, 0, Operand(1, producer_sid=9))
        station.operands[0].deliver(
            taints=1 << 9, correct=True, cycle=0, from_prediction=True
        )
        assert can_wake(station, self.VARS, cycle=1)
        strict = ModelVariables(wakeup=WakeupPolicy.VALID_ONLY)
        assert not can_wake(station, strict, cycle=1)

    def test_branch_requires_valid_operands(self):
        station = _station(0, opcode=Opcode.BEQ, srcs=(1, 2), dest=None)
        _replace_operand(station, 0, Operand(1, producer_sid=9))
        station.operands[0].deliver(
            taints=1 << 9, correct=True, cycle=0, from_prediction=True
        )
        assert not can_wake(station, self.VARS, cycle=1)
        permissive = ModelVariables(
            branch_resolution=BranchResolution.SPECULATIVE_ALLOWED
        )
        assert can_wake(station, permissive, cycle=1)

    def test_nullify_enables_future_wakeup(self):
        station = _station(0)
        station.issued = True
        station.executed = True
        epoch = station.epoch
        station.nullify(min_issue_cycle=7)
        assert not station.issued and not station.executed
        assert station.min_issue_cycle == 7
        assert station.epoch == epoch + 1
        assert can_wake(station, self.VARS, cycle=7)


class TestSelection:
    def test_paper_priority_branch_load_first(self):
        alu = _station(0)
        load = _station(1, opcode=Opcode.LD, srcs=(8,), dest=9)
        branch = _station(2, opcode=Opcode.BNE, srcs=(1, 2), dest=None)
        chosen = select([alu, load, branch], 2, ModelVariables())
        assert {s.sid for s in chosen} == {1, 2}

    def test_oldest_first_within_type(self):
        older = _station(3)
        younger = _station(5)
        chosen = select([younger, older], 1, ModelVariables())
        assert chosen[0].sid == 3

    def test_non_speculative_preferred(self):
        speculative = _station(0)
        _replace_operand(speculative, 0, Operand(1, producer_sid=9))
        speculative.operands[0].deliver(
            taints=1 << 9, correct=True, cycle=0, from_prediction=True
        )
        plain = _station(1)
        chosen = select(
            [speculative, plain], 1, ModelVariables()
        )
        assert chosen[0].sid == 1  # younger but non-speculative wins

    def test_speculative_equal_policy_ignores_taints(self):
        speculative = _station(0)
        _replace_operand(speculative, 0, Operand(1, producer_sid=9))
        speculative.operands[0].deliver(
            taints=1 << 9, correct=True, cycle=0, from_prediction=True
        )
        plain = _station(1)
        variables = ModelVariables(selection=SelectionPolicy.SPECULATIVE_EQUAL)
        chosen = select([speculative, plain], 1, variables)
        assert chosen[0].sid == 0  # oldest wins regardless of taints

    def test_oldest_first_policy(self):
        load = _station(4, opcode=Opcode.LD, srcs=(8,), dest=9)
        alu = _station(2)
        variables = ModelVariables(selection=SelectionPolicy.OLDEST_FIRST)
        chosen = select([load, alu], 1, variables)
        assert chosen[0].sid == 2

    def test_selection_key_is_total(self):
        stations = [_station(i) for i in range(5)]
        keys = [selection_key(s, SelectionPolicy.PAPER) for s in stations]
        assert len(set(keys)) == 5
