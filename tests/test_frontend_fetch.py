"""Fetch engine tests: width, I-cache stalls, wrong path, redirect."""

from repro.frontend import FetchEngine, GsharePredictor
from repro.isa.opcodes import Opcode
from repro.mem.cache import Cache
from repro.trace import TraceRecord


def _linear_trace(n, start=0x1000):
    return [
        TraceRecord(i, start + 8 * i, Opcode.ADD, (4,), 8, i, next_pc=start + 8 * (i + 1))
        for i in range(n)
    ]


def _branch_record(seq, pc, taken, target):
    return TraceRecord(
        seq, pc, Opcode.BNE, (8,), branch_taken=taken,
        next_pc=target if taken else pc + 8,
    )


def test_fetch_respects_width():
    engine = FetchEngine(_linear_trace(20), None, None)
    batch = engine.fetch(0, 4)
    assert len(batch) == 4
    assert [f.rec.seq for f in batch] == [0, 1, 2, 3]


def test_fetch_exhaustion():
    engine = FetchEngine(_linear_trace(3), None, None)
    assert len(engine.fetch(0, 8)) == 3
    assert engine.exhausted
    assert engine.fetch(1, 8) == []


def test_icache_miss_stalls_fetch():
    icache = Cache("L1I", size_bytes=1024, block_bytes=32, assoc=1,
                   hit_latency=1, miss_latency=9)
    engine = FetchEngine(_linear_trace(8), icache, None)
    assert engine.fetch(0, 8) == []  # cold miss on the first block
    assert engine.fetch(5, 8) == []  # still stalled (latency 10)
    batch = engine.fetch(10, 8)
    assert len(batch) >= 1
    assert engine.icache_stall_cycles > 0


def test_correctly_predicted_branch_does_not_break_fetch():
    # Train gshare so the branch predicts correctly, then check the fetch
    # group crosses it (ideal fetch reads past predicted-taken branches).
    trace = []
    trace.append(_branch_record(0, 0x1000, False, 0))
    trace.extend(
        TraceRecord(i, 0x1008 + 8 * (i - 1), Opcode.ADD, (4,), 8, i,
                    next_pc=0x1010 + 8 * (i - 1))
        for i in range(1, 4)
    )
    bpred = GsharePredictor()
    engine = FetchEngine(trace, None, bpred)
    batch = engine.fetch(0, 8)
    # not-taken prediction from init counters is correct: full group fetched
    assert len(batch) == 4
    assert not batch[0].mispredicted


def test_mispredicted_branch_switches_to_wrong_path():
    trace = [_branch_record(0, 0x1000, True, 0x4000)]
    trace.append(TraceRecord(1, 0x4000, Opcode.ADD, (4,), 8, 0, next_pc=0x4008))
    bpred = GsharePredictor()  # init predicts not-taken -> mispredict
    engine = FetchEngine(trace, None, bpred)
    batch = engine.fetch(0, 8)
    assert batch[0].mispredicted
    assert all(f.wrong_path for f in batch[1:])
    assert engine.on_wrong_path
    more = engine.fetch(1, 8)
    assert all(f.wrong_path for f in more)
    # redirect resumes the correct path after the penalty
    engine.redirect(5, penalty=1)
    assert engine.fetch(5, 8) == []  # redirect bubble
    batch2 = engine.fetch(6, 8)
    assert [f.rec.seq for f in batch2] == [1]
    assert not engine.on_wrong_path


def test_wrong_path_disabled_stalls_instead():
    trace = [_branch_record(0, 0x1000, True, 0x4000),
             TraceRecord(1, 0x4000, Opcode.ADD, (4,), 8, 0, next_pc=0x4008)]
    engine = FetchEngine(trace, None, GsharePredictor(), model_wrong_path=False)
    batch = engine.fetch(0, 8)
    assert batch[0].mispredicted and len(batch) == 1
    assert engine.fetch(1, 8) == []
    engine.redirect(3)
    assert [f.rec.seq for f in engine.fetch(4, 8)] == [1]


def test_rewind_replays_the_trace():
    engine = FetchEngine(_linear_trace(6), None, None)
    engine.fetch(0, 4)
    engine.rewind_to(2, 0, penalty=1)
    batch = engine.fetch(1, 8)
    assert [f.rec.seq for f in batch] == [2, 3, 4, 5]


def test_wrong_path_generator_is_deterministic():
    def run():
        trace = [_branch_record(0, 0x1000, True, 0x4000),
                 TraceRecord(1, 0x4000, Opcode.ADD, (4,), 8, 0, next_pc=0x4008)]
        engine = FetchEngine(trace, None, GsharePredictor(), seed=11)
        engine.fetch(0, 4)
        return [(f.rec.pc, f.rec.opcode) for f in engine.fetch(1, 8)]

    assert run() == run()


def test_wrong_path_mix_contains_loads():
    trace = [_branch_record(0, 0x1000, True, 0x4000),
             TraceRecord(1, 0x4000, Opcode.ADD, (4,), 8, 0, next_pc=0x4008)]
    engine = FetchEngine(trace, None, GsharePredictor())
    engine.fetch(0, 1)
    fetched = []
    for cycle in range(1, 30):
        fetched.extend(engine.fetch(cycle, 8))
    opcodes = {f.rec.opcode for f in fetched}
    assert Opcode.LD in opcodes
    assert Opcode.ADD in opcodes


def test_wrong_path_memo_lru_cap(monkeypatch):
    import repro.frontend.fetch as fetch_mod

    monkeypatch.setattr(fetch_mod, "_WP_STREAMS", {})
    monkeypatch.setattr(fetch_mod, "_WP_STREAM_LIMIT", 4)
    streams = fetch_mod._WP_STREAMS

    for pc in (0x100, 0x200, 0x300, 0x400):
        fetch_mod._wrong_path_cache(7, pc)
    assert len(streams) == 4

    # Touch the oldest entry so it becomes the most recently used.
    fetch_mod._wrong_path_cache(7, 0x100)
    assert next(reversed(streams)) == (7, 0x100)

    # Inserting past the cap evicts exactly one entry - the coldest
    # ((7, 0x200), since (7, 0x100) was just touched) - not the memo.
    fetch_mod._wrong_path_cache(7, 0x500)
    assert len(streams) == 4
    assert (7, 0x200) not in streams
    assert (7, 0x100) in streams
    assert (7, 0x500) in streams


def test_wrong_path_memo_hit_preserves_stream_state(monkeypatch):
    import repro.frontend.fetch as fetch_mod

    monkeypatch.setattr(fetch_mod, "_WP_STREAMS", {})
    cache = fetch_mod._wrong_path_cache(11, 0x4000)
    cache[0].append("sentinel-record")
    # A hit returns the same mutable stream object (move-to-end must not
    # copy or reset the recorded prefix).
    assert fetch_mod._wrong_path_cache(11, 0x4000) is cache
    assert cache[0] == ["sentinel-record"]
