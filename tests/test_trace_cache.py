"""Persistent on-disk trace cache: keys, hits, invalidation, wiring."""

from __future__ import annotations

import pytest

from repro.programs.suite import KernelSpec, kernel
from repro.trace import cache as trace_cache
from repro.trace.record import TraceRecord


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """Point the cache at a private directory for the test."""
    directory = tmp_path / "traces"
    monkeypatch.setenv(trace_cache.ENV_VAR, str(directory))
    return directory


@pytest.fixture()
def capture_counter(monkeypatch):
    """Count functional-simulator trace captures."""
    calls = {"count": 0}
    original = KernelSpec.trace
    original_iter = KernelSpec.iter_trace

    def counting(self, max_instructions=None):
        calls["count"] += 1
        return original(self, max_instructions)

    def counting_iter(self, max_instructions=None):
        calls["count"] += 1
        return original_iter(self, max_instructions)

    monkeypatch.setattr(KernelSpec, "trace", counting)
    monkeypatch.setattr(KernelSpec, "iter_trace", counting_iter)
    return calls


# -- key scheme ----------------------------------------------------------


def test_key_contains_name_hash_and_limit():
    key = trace_cache.trace_key("compress", "SOURCE TEXT", 500)
    name, digest, limit = key.rsplit("-", 2)
    assert name == "compress"
    assert digest == trace_cache.source_hash("SOURCE TEXT")
    assert limit == "500"
    assert trace_cache.trace_key("compress", "SOURCE TEXT", None).endswith(
        "-full"
    )


def test_key_changes_with_source():
    assert trace_cache.trace_key("go", "a", 10) != trace_cache.trace_key(
        "go", "b", 10
    )


def test_env_disables_cache(monkeypatch):
    for value in ("off", "0", "none", ""):
        monkeypatch.setenv(trace_cache.ENV_VAR, value)
        assert trace_cache.cache_dir() is None
        assert not trace_cache.cache_enabled()
        assert trace_cache.store_trace("x", "s", 1, []) is None
        assert trace_cache.load_trace("x", "s", 1) is None


def test_env_falsy_spellings_disable_not_relocate(monkeypatch, tmp_path):
    """Regression: "false"/"no" (and case/space variants) must disable the
    cache, not be interpreted as a relocation directory of that name."""
    monkeypatch.chdir(tmp_path)
    for value in ("false", "no", "False", "NO", " off ", "Disabled"):
        monkeypatch.setenv(trace_cache.ENV_VAR, value)
        assert trace_cache.cache_dir() is None, value
        assert not trace_cache.cache_enabled()
        assert trace_cache.trace_path("x", "s", 1) is None
        assert trace_cache.store_trace("x", "s", 1, []) is None
        assert trace_cache.cache_entries() == []
    # No stray "false"/"no" directories were created anywhere nearby.
    assert sorted(p.name for p in tmp_path.iterdir()) == []


def test_env_disabled_cached_trace_no_writes(monkeypatch, tmp_path, capture_counter):
    """cached_trace must work (re-capturing each time) with the cache off,
    without creating any directory."""
    from repro.trace.cache import cached_trace

    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv(trace_cache.ENV_VAR, "false")
    first = cached_trace("compress", 50)
    second = cached_trace("compress", 50)
    assert [r.seq for r in first] == [r.seq for r in second]
    assert capture_counter["count"] == 2  # no cache hit: captured both times
    assert sorted(p.name for p in tmp_path.iterdir()) == []


def test_env_overrides_location(cache_dir):
    assert trace_cache.cache_dir() == cache_dir


# -- store / load round trip ---------------------------------------------


def test_round_trip_preserves_records(cache_dir):
    trace = kernel("compress").trace(200)
    path = trace_cache.store_trace("compress", "src", 200, trace)
    assert path is not None and path.is_file()
    loaded = trace_cache.load_trace("compress", "src", 200)
    assert loaded == trace
    # Engine-critical derived fields survive the round trip too.
    assert [r.dest_fold for r in loaded] == [r.dest_fold for r in trace]
    assert [r.exec_latency for r in loaded] == [r.exec_latency for r in trace]


def test_miss_on_unknown_key(cache_dir):
    assert trace_cache.load_trace("compress", "src", 123) is None


def test_stale_source_hash_invalidates(cache_dir):
    trace = kernel("compress").trace(50)
    trace_cache.store_trace("compress", "old source", 50, trace)
    # Same benchmark and limit, edited kernel source: must be a miss.
    assert trace_cache.load_trace("compress", "new source", 50) is None
    assert trace_cache.load_trace("compress", "old source", 50) == trace


def test_corrupt_entry_is_miss_and_removed(cache_dir):
    trace = kernel("compress").trace(20)
    path = trace_cache.store_trace("compress", "src", 20, trace)
    path.write_bytes(b"VSRT\x02garbage-not-varints")
    assert trace_cache.load_trace("compress", "src", 20) is None
    assert not path.exists()


# -- cached_trace orchestration ------------------------------------------


def test_cached_trace_hits_skip_capture(cache_dir, capture_counter):
    first = trace_cache.cached_trace("compress", 150)
    assert capture_counter["count"] == 1
    second = trace_cache.cached_trace("compress", 150)
    assert capture_counter["count"] == 1  # served from disk
    assert second == first
    assert isinstance(second[0], TraceRecord)


def test_cached_trace_distinguishes_limits(cache_dir, capture_counter):
    trace_cache.cached_trace("compress", 60)
    trace_cache.cached_trace("compress", 61)
    assert capture_counter["count"] == 2


def test_cached_trace_works_disabled(monkeypatch, capture_counter):
    monkeypatch.setenv(trace_cache.ENV_VAR, "off")
    trace = trace_cache.cached_trace("compress", 40)
    assert len(trace) == 40
    assert capture_counter["count"] == 1


# -- maintenance ----------------------------------------------------------


def test_info_and_clear(cache_dir):
    assert trace_cache.cache_info()["entries"] == 0
    trace_cache.cached_trace("compress", 30)
    trace_cache.cached_trace("m88ksim", 30)
    info = trace_cache.cache_info()
    assert info["enabled"] and info["entries"] == 2 and info["bytes"] > 0
    assert trace_cache.clear_cache() == 2
    assert trace_cache.cache_info()["entries"] == 0


def test_warm_cache(cache_dir, capture_counter):
    lengths = trace_cache.warm_cache(["compress", "perl"], 80)
    assert lengths == {"compress": 80, "perl": 80}
    assert capture_counter["count"] == 2
    trace_cache.warm_cache(["compress", "perl"], 80)
    assert capture_counter["count"] == 2  # all hits


# -- harness wiring -------------------------------------------------------


def test_warm_sweep_runs_zero_functional_simulations(
    cache_dir, capture_counter, monkeypatch
):
    """Acceptance: a second sweep over a warm cache never executes the
    functional simulator."""
    from repro.engine.config import ProcessorConfig
    from repro.core.model import GREAT_MODEL
    from repro.harness import parallel

    jobs = [
        parallel.SimJob("compress", ProcessorConfig(4, 24), None, 300),
        parallel.SimJob("compress", ProcessorConfig(4, 24), GREAT_MODEL, 300),
    ]
    monkeypatch.setattr(parallel, "_TRACE_CACHE", {})
    cold = parallel.run_jobs(jobs, jobs=1)
    assert capture_counter["count"] == 1

    # Fresh process memo (as a new sweep process would have): the disk
    # tier alone must satisfy every trace request.
    monkeypatch.setattr(parallel, "_TRACE_CACHE", {})
    warm = parallel.run_jobs(jobs, jobs=1)
    assert capture_counter["count"] == 1
    assert [r.counters.retired for r in warm] == [
        r.counters.retired for r in cold
    ]
    assert [r.cycles for r in warm] == [r.cycles for r in cold]


def test_execute_does_not_touch_global_random(cache_dir):
    """The per-job seed must not reseed the process-wide RNG."""
    import random

    from repro.engine.config import ProcessorConfig
    from repro.harness import parallel

    random.seed(1234)
    expected = random.Random(1234).random()
    parallel._execute(
        parallel.SimJob("compress", ProcessorConfig(4, 24), None, 100)
    )
    assert random.random() == expected


# -- CLI ------------------------------------------------------------------


def test_cli_cache_commands(cache_dir, capsys):
    from repro.cli import main

    assert main(["cache", "warm", "--benchmarks", "compress",
                 "--max-instructions", "40"]) == 0
    out = capsys.readouterr().out
    assert "compress" in out and "40" in out

    assert main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    assert "enabled" in out and str(cache_dir) in out

    assert main(["cache", "clear"]) == 0
    assert "removed 1" in capsys.readouterr().out


def test_cli_cache_warm_disabled_errors(monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv(trace_cache.ENV_VAR, "off")
    assert main(["cache", "warm"]) == 2
    assert "disabled" in capsys.readouterr().err
