"""Assembler unit tests: directives, labels, pseudo-ops, diagnostics."""

import pytest

from repro.asm import AsmError, assemble
from repro.asm.assembler import DATA_BASE, TEXT_BASE
from repro.isa.opcodes import Opcode


def test_simple_program_layout():
    program = assemble("add r1, r2, r3\nsub r4, r5, r6\n")
    assert len(program.instructions) == 2
    assert program.text_base == TEXT_BASE
    assert program.instructions[0].opcode is Opcode.ADD
    assert program.instructions[1].opcode is Opcode.SUB
    assert program.instruction_at(TEXT_BASE + 8).opcode is Opcode.SUB


def test_labels_resolve_forward_and_backward():
    program = assemble(
        """
        start: addi r1, r1, 1
        j end
        j start
        end: halt
        """
    )
    assert program.labels["start"] == TEXT_BASE
    jump_forward = program.instructions[1]
    jump_back = program.instructions[2]
    assert jump_forward.imm == program.labels["end"]
    assert jump_back.imm == TEXT_BASE


def test_entry_defaults_to_main_label():
    program = assemble("nop\nmain: halt\n")
    assert program.entry == TEXT_BASE + 8


def test_data_directives():
    program = assemble(
        """
        .data
        vals: .word 1, 2, -1
        buf:  .space 16
        msg:  .asciiz "hi"
        .align 3
        more: .word 7
        .text
        halt
        """
    )
    assert program.labels["vals"] == DATA_BASE
    assert program.labels["buf"] == DATA_BASE + 24
    assert program.labels["msg"] == DATA_BASE + 40
    data = program.data
    assert int.from_bytes(data[0:8], "little") == 1
    assert int.from_bytes(data[16:24], "little") == (1 << 64) - 1  # -1 wraps
    assert data[40:43] == b"hi\x00"
    assert program.labels["more"] % 8 == 0


def test_pseudo_instructions_expand():
    program = assemble(
        """
        mv r1, r2
        not r3, r4
        neg r5, r6
        inc r7
        dec r8
        ret
        """
    )
    mnemonics = [instr.opcode.mnemonic for instr in program.instructions]
    assert mnemonics == ["or", "nor", "sub", "addi", "addi", "jr"]
    assert program.instructions[0].rt == 0
    assert program.instructions[5].rs == 31  # ret = jr ra


def test_call_and_bgt_expansion():
    program = assemble(
        """
        main: bgt r1, r2, main
        call main
        """
    )
    bgt = program.instructions[0]
    assert bgt.opcode is Opcode.BLT
    assert (bgt.rs, bgt.rt) == (2, 1)  # operands swapped
    call = program.instructions[1]
    assert call.opcode is Opcode.JAL and call.rd == 31


def test_memory_operand_with_label_offset():
    program = assemble(
        """
        .data
        x: .word 42
        .text
        ld r1, x(r0)
        """
    )
    assert program.instructions[0].imm == DATA_BASE


def test_char_literal_immediates():
    program = assemble("li r1, 'a'\n")
    assert program.instructions[0].imm == ord("a")


def test_comments_are_ignored():
    program = assemble("add r1, r2, r3  # comment\n; whole line\n// also\n")
    assert len(program.instructions) == 1


def test_duplicate_label_rejected():
    with pytest.raises(AsmError, match="duplicate label"):
        assemble("x: nop\nx: nop\n")


def test_unknown_instruction_reports_line():
    with pytest.raises(AsmError, match="line 2"):
        assemble("nop\nfrobnicate r1\n")


def test_wrong_operand_count():
    with pytest.raises(AsmError, match="expects 3"):
        assemble("add r1, r2\n")


def test_unknown_register():
    with pytest.raises(AsmError, match="unknown register"):
        assemble("add r1, r2, r99\n")


def test_bad_memory_operand():
    with pytest.raises(AsmError, match="bad memory operand"):
        assemble("ld r1, r2\n")


def test_word_outside_data_segment_rejected():
    with pytest.raises(AsmError, match="only allowed in the data segment"):
        assemble(".word 1\n")


def test_instruction_in_data_segment_rejected():
    with pytest.raises(AsmError, match="text segment"):
        assemble(".data\nadd r1, r2, r3\n")


def test_unknown_label_in_operand():
    with pytest.raises(AsmError, match="bad integer literal"):
        assemble("j nowhere\n")


def test_instruction_at_diagnostics():
    program = assemble("nop\n")
    with pytest.raises(AsmError, match="misaligned"):
        program.instruction_at(TEXT_BASE + 3)
    with pytest.raises(AsmError, match="outside"):
        program.instruction_at(TEXT_BASE + 800)
    with pytest.raises(AsmError, match="unknown label"):
        program.address_of("missing")
