"""Latency-variable model tests, pinned to the paper's Section 4.1 table."""

import pytest

from repro.core.latency import (
    GOOD_LATENCIES,
    GREAT_LATENCIES,
    SUPER_LATENCIES,
    LatencyModel,
)


def test_paper_model_table_values():
    """The exact table from Section 4.1."""
    table = {
        "super": SUPER_LATENCIES,
        "great": GREAT_LATENCIES,
        "good": GOOD_LATENCIES,
    }
    expected = {
        # (exec-eq-inval, exec-eq-verif, free-issue, free-ret, reissue,
        #  branch, mem)
        "super": (0, 0, 1, 1, 0, 0, 0),
        "great": (0, 0, 1, 1, 1, 1, 1),
        "good": (1, 1, 1, 1, 1, 1, 1),
    }
    for name, latencies in table.items():
        values = tuple(value for __, value in latencies.table_rows())
        assert values == expected[name], name


def test_combined_views():
    model = LatencyModel(
        exec_to_equality=1, equality_to_verification=2, equality_to_invalidation=3
    )
    assert model.exec_to_verification == 3
    assert model.exec_to_invalidation == 4


def test_from_combined_attributes_to_post_equality():
    model = LatencyModel.from_combined(
        exec_eq_invalidation=1, exec_eq_verification=1
    )
    assert model.exec_to_equality == 0
    assert model.equality_to_verification == 1
    assert model.equality_to_invalidation == 1


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        LatencyModel(exec_to_equality=-1)
    with pytest.raises(ValueError):
        LatencyModel(verification_to_branch=-2)


def test_non_integer_latency_rejected():
    with pytest.raises(ValueError):
        LatencyModel(invalidation_to_reissue=0.5)  # type: ignore[arg-type]


def test_table_rows_shape():
    rows = SUPER_LATENCIES.table_rows()
    assert len(rows) == 7
    assert rows[0][0].startswith("Execution")


def test_default_is_most_optimistic():
    default = LatencyModel()
    assert default.exec_to_verification == 0
    assert default.verification_to_free_issue == 1
