"""The always-on simulation service: result store, admission queue,
HTTP front door, and the run_jobs integration.

The store tests mirror tests/test_trace_cache.py's discipline — every
degraded-entry path (version mismatch, corruption, wrong key,
concurrent writers) must read as a *miss*, never an error and never a
wrong result — and the golden-point test pins the store's headline
guarantee: a store-served result is bit-identical to a freshly
computed one.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from repro.cluster.serial import job_key, job_to_blob
from repro.core.model import GREAT_MODEL
from repro.engine.config import ProcessorConfig, paper_config
from repro.harness.parallel import SimJob, run_jobs
from repro.service import results as rs
from repro.service.admission import FairQueue, clamp_weight
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceConfig, SimulationService

_CONFIG = paper_config("4/24")
_LIMIT = 300


def _job(benchmark: str = "compress", **overrides) -> SimJob:
    settings = dict(
        benchmark=benchmark, config=_CONFIG, model=GREAT_MODEL,
        max_instructions=_LIMIT, confidence="R", update_timing="D",
    )
    settings.update(overrides)
    return SimJob(**settings)


@pytest.fixture(scope="module")
def computed():
    """One job and its freshly computed result, shared by store tests."""
    job = _job()
    return job, run_jobs([job])[0]


# -- the result store ------------------------------------------------------


class TestResultStore:
    def test_roundtrip_hit(self, computed, tmp_path):
        job, result = computed
        key = job_key(job)
        path = rs.store_result(key, result, tmp_path)
        assert path is not None and path.is_file()
        assert path.name == key + ".vsres1"
        loaded = rs.load_result(key, tmp_path)
        assert loaded == result
        assert loaded.counters == result.counters

    def test_absent_key_is_miss(self, tmp_path):
        assert rs.load_wire("0" * 24, tmp_path) is None
        assert rs.load_result("0" * 24, tmp_path) is None

    def test_disabled_paths_are_none(self, monkeypatch):
        monkeypatch.delenv(rs.ENV_VAR, raising=False)
        assert rs.store_dir() is None
        assert not rs.store_enabled()
        assert rs.result_path("ab" * 12) is None
        assert rs.store_result("ab" * 12, {"cycles": 1}) is None
        assert rs.load_wire("ab" * 12) is None

    @pytest.mark.parametrize(
        "spelling", ["", "0", "off", "none", "disabled", "false", "no",
                     " OFF ", "None"]
    )
    def test_falsy_spellings_disable_even_with_default(
        self, monkeypatch, tmp_path, spelling
    ):
        monkeypatch.setenv(rs.ENV_VAR, spelling)
        assert rs.store_dir() is None
        assert rs.store_dir(default=tmp_path) is None

    def test_env_path_relocates(self, monkeypatch, tmp_path):
        monkeypatch.setenv(rs.ENV_VAR, str(tmp_path / "elsewhere"))
        assert rs.store_dir() == tmp_path / "elsewhere"
        assert rs.store_dir(default=tmp_path / "ignored") == (
            tmp_path / "elsewhere"
        )

    def test_version_mismatch_is_miss_and_deleted(self, computed, tmp_path):
        job, result = computed
        key = job_key(job)
        path = rs.store_result(key, result, tmp_path)
        doc = json.loads(path.read_text())
        doc["v"] = rs._VERSION + 1
        doc["crc"] = rs._entry_crc(doc)  # CRC valid — version alone rejects
        path.write_text(json.dumps(doc))
        assert rs.load_wire(key, tmp_path) is None
        assert not path.exists()

    def test_crc_mismatch_is_miss_and_deleted(self, computed, tmp_path):
        job, result = computed
        key = job_key(job)
        path = rs.store_result(key, result, tmp_path)
        doc = json.loads(path.read_text())
        counters = doc["result"]["counters"]
        counters["cycles"] = counters["cycles"] + 1  # bit flip
        path.write_text(json.dumps(doc))  # stale crc
        assert rs.load_wire(key, tmp_path) is None
        assert not path.exists()

    def test_truncated_entry_is_miss_and_deleted(self, computed, tmp_path):
        job, result = computed
        key = job_key(job)
        path = rs.store_result(key, result, tmp_path)
        path.write_bytes(path.read_bytes()[: 40])  # torn write
        assert rs.load_wire(key, tmp_path) is None
        assert not path.exists()

    def test_wrong_key_in_entry_is_miss(self, computed, tmp_path):
        """An entry renamed (or hard-linked) to another key must not be
        served under it — the recorded key is part of the integrity
        check."""
        job, result = computed
        key = job_key(job)
        path = rs.store_result(key, result, tmp_path)
        other = "f" * len(key)
        path.rename(tmp_path / (other + ".vsres1"))
        assert rs.load_wire(other, tmp_path) is None

    def test_concurrent_writers_leave_a_valid_entry(self, computed, tmp_path):
        job, result = computed
        key = job_key(job)
        barrier = threading.Barrier(8)

        def write():
            barrier.wait()
            for _ in range(5):
                rs.store_result(key, result, tmp_path)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert rs.load_result(key, tmp_path) == result
        assert len(rs.store_entries(tmp_path)) == 1
        assert not list(tmp_path.glob("*.tmp"))  # no temp-file litter

    def test_eviction_is_oldest_first_and_bounded(self, computed, tmp_path):
        job, result = computed
        keys = [f"{i:024d}" for i in range(5)]
        for i, key in enumerate(keys):
            path = rs.store_result(key, result, tmp_path)
            stamp = 1_000_000 + i
            import os as _os

            _os.utime(path, (stamp, stamp))
        assert rs.evict_store(tmp_path) == 0  # no budget, no eviction
        assert rs.evict_store(tmp_path, max_entries=3) == 2
        survivors = {p.stem for p in rs.store_entries(tmp_path)}
        assert survivors == set(keys[2:])  # the two oldest evicted
        entry_bytes = rs.store_entries(tmp_path)[0].stat().st_size
        assert rs.evict_store(tmp_path, max_bytes=entry_bytes) == 2
        assert {p.stem for p in rs.store_entries(tmp_path)} == {keys[4]}

    def test_info_and_clear(self, computed, tmp_path):
        job, result = computed
        assert rs.store_info(None) == {
            "enabled": False, "dir": None, "entries": 0, "bytes": 0,
        }
        rs.store_result(job_key(job), result, tmp_path)
        info = rs.store_info(tmp_path)
        assert info["enabled"] and info["entries"] == 1 and info["bytes"] > 0
        assert rs.clear_store(tmp_path) == 1
        assert rs.store_entries(tmp_path) == []


GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_SNAPSHOTS = sorted(GOLDEN_DIR.glob("*.json"))


@pytest.mark.parametrize(
    "path", GOLDEN_SNAPSHOTS, ids=[p.stem for p in GOLDEN_SNAPSHOTS]
)
def test_store_roundtrip_is_bit_identical_on_golden_points(path, tmp_path):
    """Every golden point's result survives the store bit-for-bit: the
    serialized entry rebuilds to a SimulationResult whose counters equal
    both the fresh run's and the committed snapshot's."""
    from tests.test_golden_counters import _load_trace, counters_dict
    from repro.engine.sim import run_trace

    snapshot = json.loads(path.read_text())
    trace = _load_trace(snapshot["workload"])
    config = ProcessorConfig(
        issue_width=snapshot["config"]["issue_width"],
        window_size=snapshot["config"]["window_size"],
    )
    fresh = run_trace(trace, config, GREAT_MODEL, confidence="R",
                      update_timing="D")
    key = f"{path.stem:>024.24}".replace(" ", "0")
    rs.store_result(key, fresh, tmp_path)
    served = rs.load_result(key, tmp_path)
    assert served == fresh
    assert counters_dict(served.counters) == counters_dict(fresh.counters)
    assert counters_dict(served.counters) == snapshot["vp"]


# -- run_jobs integration --------------------------------------------------


class TestRunJobsStore:
    def test_warm_jobs_skip_execution(self, monkeypatch, tmp_path):
        monkeypatch.setenv(rs.ENV_VAR, str(tmp_path))
        grid = [_job(), _job(update_timing="I"), _job(model=None)]
        first = run_jobs(grid)
        assert len(rs.store_entries(tmp_path)) == len(grid)

        import repro.harness.parallel as parallel

        def refuse(*args, **kwargs):
            raise AssertionError("warm grid reached the execution backend")

        monkeypatch.setattr(parallel, "_run_jobs_backend", refuse)
        assert run_jobs(grid) == first

    def test_duplicate_keys_execute_once(self, monkeypatch, tmp_path):
        monkeypatch.setenv(rs.ENV_VAR, str(tmp_path))
        import repro.harness.parallel as parallel

        executed: list = []
        real = parallel._run_jobs_backend

        def counting(job_list, *args, **kwargs):
            executed.extend(job_list)
            return real(job_list, *args, **kwargs)

        monkeypatch.setattr(parallel, "_run_jobs_backend", counting)
        grid = [_job(), _job(), _job(update_timing="I")]
        results = run_jobs(grid)
        assert len(executed) == 2  # two distinct keys for three jobs
        assert results[0] == results[1]
        assert results[0].counters != results[2].counters

    def test_cold_and_warm_results_identical(self, monkeypatch, tmp_path):
        grid = [_job(), _job(update_timing="I")]
        reference = run_jobs(grid)  # store off (conftest)
        monkeypatch.setenv(rs.ENV_VAR, str(tmp_path))
        assert run_jobs(grid) == reference  # cold: computes + stores
        assert run_jobs(grid) == reference  # warm: served from disk

    def test_unset_env_disables_for_harness(self, monkeypatch):
        monkeypatch.delenv(rs.ENV_VAR, raising=False)
        assert not rs.store_enabled()


# -- the admission queue ---------------------------------------------------


class TestFairQueue:
    def test_clamp_weight(self):
        assert clamp_weight(1.0) == 1.0
        assert clamp_weight(0.0) == 0.1
        assert clamp_weight(-5) == 0.1
        assert clamp_weight(10_000) == 100.0
        assert clamp_weight(float("nan")) == 1.0
        assert clamp_weight("bogus") == 1.0
        assert clamp_weight(None) == 1.0

    def test_offer_is_all_or_nothing(self):
        queue = FairQueue(max_queue=4)
        assert queue.offer("a", 1.0, [1, 2, 3])
        assert not queue.offer("a", 1.0, [4, 5])  # 3 + 2 > 4
        assert queue.depth() == 3
        assert queue.offer("a", 1.0, [4])
        assert queue.depth() == 4

    def test_take_respects_weights(self):
        queue = FairQueue(max_queue=1000)
        queue.offer("heavy", 3.0, [("h", i) for i in range(300)])
        queue.offer("light", 1.0, [("l", i) for i in range(300)])
        taken = [queue.take(1)[0] for _ in range(200)]
        heavy = sum(1 for client, _ in taken if client == "h")
        light = len(taken) - heavy
        assert heavy == pytest.approx(3 * light, rel=0.1)

    def test_items_fifo_within_a_lane(self):
        queue = FairQueue()
        queue.offer("a", 1.0, [1, 2, 3])
        assert queue.take(3) == [1, 2, 3]

    def test_idle_lane_does_not_bank_credit(self):
        queue = FairQueue()
        queue.offer("busy", 1.0, list(range(50)))
        for _ in range(50):
            queue.take(1)
        # "idle" never queued anything while busy ran; when both offer
        # now, idle must not have accumulated 50 turns of priority —
        # service alternates rather than draining idle's lane first.
        queue.offer("busy", 1.0, ["b1", "b2"])
        queue.offer("idle", 1.0, ["i1", "i2"])
        first_four = [queue.take(1)[0] for _ in range(4)]
        assert set(first_four[:2]) == {"b1", "i1"}

    def test_take_timeout_and_close(self):
        queue = FairQueue()
        started = time.monotonic()
        assert queue.take(1, timeout=0.05) == []
        assert time.monotonic() - started >= 0.04
        queue.close()
        assert not queue.offer("a", 1.0, [1])
        assert queue.take(1, timeout=0.01) == []

    def test_snapshot(self):
        queue = FairQueue()
        queue.offer("a", 2.0, [1, 2])
        queue.take(1)
        snap = queue.snapshot()
        assert snap == {"a": {"queued": 1, "weight": 2.0, "dispatched": 1}}


# -- the HTTP service ------------------------------------------------------


def _post(client: ServiceClient, path: str, body: dict):
    return client._request("POST", path, body)


class TestServiceHTTP:
    def test_status_schema_matches_cluster_jobs_block(self, tmp_path):
        with SimulationService(ServiceConfig(store=tmp_path / "s")) as service:
            client = ServiceClient(*service.address)
            assert client.healthy()
            status = client.status()
        assert status["type"] == "status"
        # the cluster scheduler's jobs schema, exactly
        assert set(status["jobs"]) == {"pending", "leased", "done", "failed"}
        assert set(status["backend"]) == {"backend", "jobs", "batch"}
        assert status["store"]["enabled"] is True
        assert "queue" in status and "clients" in status

    def test_submit_verifies_client_claimed_keys(self, tmp_path):
        with SimulationService(ServiceConfig(store=tmp_path / "s")) as service:
            client = ServiceClient(*service.address)
            job = _job()
            code, _, doc = _post(
                client, "/v1/submit",
                {"jobs": [{"key": "0" * 24, "blob": job_to_blob(job)}]},
            )
            assert code == 400
            assert "mismatch" in doc["error"]
            # nothing was admitted
            assert service.status()["jobs"]["pending"] == 0

    def test_submit_rejects_undecodable_blob(self, tmp_path):
        with SimulationService(ServiceConfig(store=tmp_path / "s")) as service:
            client = ServiceClient(*service.address)
            code, _, doc = _post(
                client, "/v1/submit",
                {"jobs": [{"key": "0" * 24, "blob": "!!not-base64!!"}]},
            )
            assert code == 400 and "undecodable" in doc["error"]

    def test_unknown_endpoint_and_result_states(self, tmp_path):
        with SimulationService(ServiceConfig(store=tmp_path / "s")) as service:
            client = ServiceClient(*service.address)
            code, _, _ = client._request("GET", "/v1/nope")
            assert code == 404
            code, _, doc = client._request("GET", "/v1/result/" + "0" * 24)
            assert code == 404 and doc["state"] == "unknown"
            key = client.submit([_job()])[0]
            assert service.wait([key], timeout=30.0)
            code, _, doc = client._request("GET", f"/v1/result/{key}")
            assert code == 200 and doc["state"] == "done"
            assert doc["source"] == "computed"

    def test_inflight_dedup_executes_once(self, tmp_path, monkeypatch):
        """Two clients submitting the same job while it is queued share
        one execution: the second joins, nothing runs twice."""
        from repro.service import server as server_module

        gate = threading.Event()
        calls: list = []
        real = server_module.parallel.run_jobs

        def gated(job_list, **kwargs):
            gate.wait(timeout=30.0)
            calls.append(list(job_list))
            return real(job_list, **kwargs)

        monkeypatch.setattr(server_module.parallel, "run_jobs", gated)
        with SimulationService(ServiceConfig(store=tmp_path / "s")) as service:
            job = _job()
            first = ServiceClient(*service.address, client_id="one")
            second = ServiceClient(*service.address, client_id="two")
            keys = first.submit([job])
            receipt_code, _, doc = _post(
                second, "/v1/submit",
                {"jobs": [{"key": keys[0], "blob": job_to_blob(job)}],
                 "client": "two"},
            )
            assert receipt_code == 202
            assert doc["dispositions"] == ["joined"]
            gate.set()
            assert service.wait(keys, timeout=30.0)
            assert first.fetch(keys)["type"] == "results"
            stats = service.stats.as_dict()
        assert sum(len(c) for c in calls) == 1
        assert stats["executed"] == 1 and stats["joined"] == 1

    def test_backpressure_429_with_retry_after(self, tmp_path, monkeypatch):
        from repro.service import server as server_module

        gate = threading.Event()
        real = server_module.parallel.run_jobs

        def gated(job_list, **kwargs):
            gate.wait(timeout=30.0)
            return real(job_list, **kwargs)

        monkeypatch.setattr(server_module.parallel, "run_jobs", gated)
        config = ServiceConfig(
            store=tmp_path / "s", max_queue=1, dispatch_window=1
        )
        with SimulationService(config) as service:
            client = ServiceClient(*service.address)
            blocked = _job()
            client.submit([blocked])  # dispatcher takes it, blocks on gate
            queued = _job(update_timing="I")
            deadline = time.monotonic() + 5.0
            while True:  # the dispatcher must drain the first job first
                code, headers, doc = _post(
                    client, "/v1/submit",
                    {"jobs": [{"key": job_key(queued),
                               "blob": job_to_blob(queued)}]},
                )
                if code == 202 or time.monotonic() > deadline:
                    break
                time.sleep(0.01)
            assert code == 202
            overflow = _job(confidence="O")
            code, headers, doc = _post(
                client, "/v1/submit",
                {"jobs": [{"key": job_key(overflow),
                           "blob": job_to_blob(overflow)}]},
            )
            assert code == 429
            retry_after = {k.lower(): v for k, v in headers.items()}[
                "retry-after"
            ]
            assert int(retry_after) >= 1
            assert doc["retry_after"] > 0
            gate.set()
            assert service.wait([job_key(blocked), job_key(queued)],
                                timeout=30.0)
            assert service.stats.as_dict()["rejected"] == 1

    def test_failed_jobs_report_and_requeue_on_resubmit(
        self, tmp_path, monkeypatch
    ):
        from repro.service import server as server_module

        real = server_module.parallel.run_jobs
        fail_once = [True]

        def flaky(job_list, **kwargs):
            if fail_once[0]:
                fail_once[0] = False
                raise RuntimeError("injected executor fault")
            return real(job_list, **kwargs)

        monkeypatch.setattr(server_module.parallel, "run_jobs", flaky)
        with SimulationService(ServiceConfig(store=tmp_path / "s")) as service:
            client = ServiceClient(*service.address)
            job = _job()
            keys = client.submit([job])
            assert service.wait(keys, timeout=30.0)
            doc = client.fetch(keys)
            assert doc["type"] == "error"
            assert "injected executor fault" in doc["failures"][0]["error"]
            code, _, _ = client._request("GET", f"/v1/result/{keys[0]}")
            assert code == 500
            # resubmission replaces the failed entry with a fresh attempt
            results = client.run([job], timeout=30.0)
            assert results[0] == run_jobs([job])[0]
            assert service.stats.as_dict()["failed"] == 1

    def test_weighted_clients_visible_in_status(self, tmp_path, monkeypatch):
        from repro.service import server as server_module

        gate = threading.Event()
        real = server_module.parallel.run_jobs

        def gated(job_list, **kwargs):
            gate.wait(timeout=30.0)
            return real(job_list, **kwargs)

        monkeypatch.setattr(server_module.parallel, "run_jobs", gated)
        with SimulationService(ServiceConfig(store=tmp_path / "s")) as service:
            heavy = ServiceClient(*service.address, client_id="heavy",
                                  weight=4.0)
            light = ServiceClient(*service.address, client_id="light",
                                  weight=0.5)
            keys = heavy.submit([_job()])
            keys += light.submit([_job(update_timing="I")])
            status = service.status()
            gate.set()
            assert service.wait(keys, timeout=30.0)
        lanes = status["clients"]
        assert lanes["heavy"]["weight"] == 4.0
        assert lanes["light"]["weight"] == 0.5


# -- the acceptance scenario -----------------------------------------------


def _figure3_grid(benchmarks=("compress", "perl"), limit=_LIMIT):
    from repro.harness.figure3 import SETTINGS

    grid = [SimJob(n, _CONFIG, None, limit) for n in benchmarks]
    for timing, conf in SETTINGS:
        grid.extend(
            SimJob(n, _CONFIG, GREAT_MODEL, limit,
                   confidence=conf, update_timing=timing)
            for n in benchmarks
        )
    return grid


class TestAcceptance:
    def test_concurrent_overlapping_clients_execute_each_point_once(
        self, tmp_path
    ):
        grid = _figure3_grid()
        reference = run_jobs(grid, jobs=1)
        third = len(grid) // 3
        slices = {"a": slice(0, 2 * third), "b": slice(third, len(grid))}
        outputs: dict = {}
        errors: dict = {}

        with SimulationService(ServiceConfig(store=tmp_path / "s")) as service:
            def drive(name: str) -> None:
                client = ServiceClient(*service.address, client_id=name)
                try:
                    outputs[name] = client.run(grid[slices[name]],
                                               timeout=120.0)
                except Exception as error:  # pragma: no cover - surfaced below
                    errors[name] = error

            threads = [threading.Thread(target=drive, args=(name,))
                       for name in slices]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats.as_dict()

        assert not errors
        # identical jobs executed exactly once, store holds each point
        assert stats["executed"] == len(grid)
        assert len(rs.store_entries(tmp_path / "s")) == len(grid)
        # both clients bit-identical to the scalar serial run
        for name, results in outputs.items():
            expected = reference[slices[name]]
            assert [r.counters for r in results] == [
                r.counters for r in expected
            ]

    def test_restart_serves_completed_prefix_with_zero_recompute(
        self, tmp_path
    ):
        grid = _figure3_grid()
        reference = run_jobs(grid, jobs=1)
        prefix = grid[: len(grid) // 2]
        store = tmp_path / "s"

        with SimulationService(ServiceConfig(store=store)) as service:
            client = ServiceClient(*service.address, client_id="pre")
            assert client.run(prefix, timeout=120.0) == reference[: len(prefix)]
        # the service died mid-burst; the completed prefix is on disk
        assert len(rs.store_entries(store)) == len(prefix)

        with SimulationService(ServiceConfig(store=store)) as revived:
            client = ServiceClient(*revived.address, client_id="post")
            doc = client.run_sync(grid, timeout=120.0)
            stats = revived.stats.as_dict()
        dispositions = doc["dispositions"]
        assert dispositions[: len(prefix)] == ["store"] * len(prefix)
        assert stats["executed"] == len(grid) - len(prefix)
        assert stats["warm_hits"] == len(prefix)
        from repro.cluster.serial import result_from_wire

        served = [result_from_wire(wire) for wire in doc["results"]]
        assert [r.counters for r in served] == [
            r.counters for r in reference
        ]
