"""Local-history and tournament branch predictor tests."""

import pytest

from repro.frontend.bimodal import BimodalPredictor
from repro.frontend.gshare import GsharePredictor
from repro.frontend.local import LocalHistoryPredictor
from repro.frontend.tournament import TournamentPredictor


def _accuracy(predictor, outcomes, pc=0x1000):
    correct = 0
    for taken in outcomes:
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.update(pc, taken)
    return correct / len(outcomes)


def _loop_pattern(trip_count, loops):
    """taken x (trip_count-1), then not-taken — a counted loop branch."""
    return ([True] * (trip_count - 1) + [False]) * loops


class TestLocalHistory:
    def test_learns_loop_trip_count(self):
        # a 5-iteration loop: bimodal can never catch the exit; local can
        pattern = _loop_pattern(5, 60)
        local = _accuracy(LocalHistoryPredictor(), pattern)
        bimodal = _accuracy(BimodalPredictor(), pattern)
        assert local > 0.9
        assert local > bimodal

    def test_per_branch_histories_are_independent(self):
        predictor = LocalHistoryPredictor(bht_bits=8)
        # adjacent PCs map to different BHT entries (index = pc/8 mod 256)
        for __ in range(40):
            predictor.update(0x1000, True)
            predictor.update(0x1008, False)
        assert predictor.predict(0x1000) is True
        assert predictor.predict(0x1008) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalHistoryPredictor(history_bits=0)

    def test_accuracy_property(self):
        predictor = LocalHistoryPredictor()
        assert predictor.accuracy == 1.0
        predictor.update(0x1000, True)
        assert 0.0 <= predictor.accuracy <= 1.0


class TestTournament:
    def test_beats_or_matches_components_on_mixed_workload(self):
        # one loop branch (local's strength) + one history-correlated
        # branch (gshare's strength), interleaved
        def run(factory):
            predictor = factory()
            correct = total = 0
            loop = _loop_pattern(4, 120)
            for i, loop_taken in enumerate(loop):
                alt_taken = bool(i % 2)
                for pc, taken in ((0x1000, loop_taken), (0x4000, alt_taken)):
                    if predictor.predict(pc) == taken:
                        correct += 1
                    predictor.update(pc, taken)
                    total += 1
            return correct / total

        tournament = run(TournamentPredictor)
        gshare = run(GsharePredictor)
        local = run(LocalHistoryPredictor)
        assert tournament >= min(gshare, local)
        assert tournament > 0.8

    def test_chooser_validation(self):
        with pytest.raises(ValueError):
            TournamentPredictor(chooser_bits=0)

    def test_accuracy_counters(self):
        predictor = TournamentPredictor()
        for __ in range(30):
            predictor.update(0x1000, True)
        assert predictor.predictions == 30
        assert predictor.gshare.predictions == 30
        assert predictor.local.predictions == 30


def test_fetch_engine_accepts_any_predictor():
    from repro.frontend.fetch import FetchEngine
    from repro.isa.opcodes import Opcode
    from repro.trace.record import TraceRecord

    trace = [
        TraceRecord(0, 0x1000, Opcode.BNE, (8,), branch_taken=False,
                    next_pc=0x1008),
        TraceRecord(1, 0x1008, Opcode.ADD, (4,), 8, 1, next_pc=0x1010),
    ]
    engine = FetchEngine(trace, None, TournamentPredictor())
    batch = engine.fetch(0, 4)
    assert len(batch) == 2  # not-taken predicted correctly from cold state
