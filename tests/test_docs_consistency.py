"""Documentation consistency checks: the docs must track the code."""

from pathlib import Path

from repro.harness.experiments import EXPERIMENTS
from repro.isa.opcodes import Opcode
from repro.programs.suite import kernel_names

_ROOT = Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (_ROOT / name).read_text()


def test_isa_doc_lists_every_opcode():
    text = _read("docs/ISA.md")
    for op in Opcode:
        assert f"{op.mnemonic}" in text, f"docs/ISA.md missing {op.mnemonic}"


def test_kernels_doc_covers_the_suite():
    text = _read("docs/KERNELS.md")
    for name in kernel_names():
        assert f"**{name}**" in text, name


def test_design_md_indexes_every_paper_artifact():
    text = _read("DESIGN.md")
    for artifact in ("FIG1", "TAB1", "FIG3", "FIG4", "ABL-V", "ABL-I",
                     "ABL-L", "LIMIT"):
        assert artifact in text, artifact


def test_experiments_md_has_verdicts():
    text = _read("EXPERIMENTS.md")
    for heading in ("Table 1", "Figure 1", "Figure 3", "Figure 4",
                    "Known deviations"):
        assert heading in text, heading
    assert "reproduced" in text.lower()


def test_readme_mentions_install_quickstart_architecture():
    text = _read("README.md")
    for section in ("## Installation", "## Quickstart", "What's inside",
                    "Substitutions", "Testing"):
        assert section in text, section


def test_model_doc_covers_all_latency_variables():
    text = _read("docs/MODEL.md")
    from repro.core.latency import LatencyModel
    import dataclasses

    for field in dataclasses.fields(LatencyModel):
        assert field.name in text, field.name


def test_api_doc_mentions_every_experiment_family():
    text = _read("docs/API.md")
    # spot-check the registry surface is documented
    for key in ("table1", "figure3", "limit-study", "abl-"):
        assert key in text, key


def test_every_experiment_has_title_and_ref():
    for experiment in EXPERIMENTS.values():
        assert experiment.title
        assert experiment.paper_ref
        assert callable(experiment.run)


def test_examples_are_documented_in_readme():
    text = _read("README.md")
    examples = sorted(p.name for p in (_ROOT / "examples").glob("*.py"))
    for example in examples:
        assert example in text, f"README missing {example}"
