"""Property-based fuzzing of the instruction window and LSQ against plain
reference models."""

from hypothesis import given, strategies as st

from repro.isa.opcodes import Opcode
from repro.mem.lsq import LoadStoreQueue
from repro.trace.record import TraceRecord
from repro.window.ruu import InstructionWindow
from repro.window.station import Station


def _station(sid):
    rec = TraceRecord(sid, 0x1000 + 8 * sid, Opcode.ADD, (4,), 8, 1,
                      next_pc=0x1008 + 8 * sid)
    return Station(sid, rec)


# operations: ("insert",), ("release",), ("squash", keep_fraction)
_ops = st.lists(
    st.one_of(
        st.just(("insert",)),
        st.just(("release",)),
        st.tuples(st.just("squash"), st.floats(0.0, 1.0)),
    ),
    max_size=60,
)


@given(ops=_ops)
def test_window_matches_reference_deque(ops):
    capacity = 8
    window = InstructionWindow(capacity)
    reference: list[int] = []
    next_sid = 0
    for op in ops:
        if op[0] == "insert":
            if len(reference) < capacity:
                window.insert(_station(next_sid))
                reference.append(next_sid)
                next_sid += 1
        elif op[0] == "release":
            if reference:
                released = window.release_head()
                assert released.sid == reference.pop(0)
        else:  # squash younger than a pivot chosen by fraction
            if reference:
                pivot = reference[int(op[1] * (len(reference) - 1))]
                removed = window.squash_younger_than(pivot)
                expected_removed = [s for s in reference if s > pivot]
                assert sorted(s.sid for s in removed) == expected_removed
                reference = [s for s in reference if s <= pivot]
        assert [s.sid for s in window] == reference
        assert len(window) == len(reference)
        head = window.head()
        assert (head.sid if head else None) == (
            reference[0] if reference else None
        )


# LSQ operations over a program-ordered stream of memory ops
_lsq_ops = st.lists(
    st.tuples(
        st.sampled_from(["alloc_load", "alloc_store", "set_addr", "release",
                         "squash"]),
        st.integers(0, 7),  # which existing entry / address selector
    ),
    max_size=50,
)


@given(ops=_lsq_ops)
def test_lsq_prior_store_rule_matches_reference(ops):
    lsq = LoadStoreQueue(16)
    reference: list[dict] = []  # [{seq, is_store, addr}]
    next_seq = 0
    for kind, selector in ops:
        if kind in ("alloc_load", "alloc_store") and len(reference) < 16:
            is_store = kind == "alloc_store"
            lsq.allocate(next_seq, is_store)
            reference.append({"seq": next_seq, "is_store": is_store,
                              "addr": None})
            next_seq += 1
        elif kind == "set_addr" and reference:
            entry = reference[selector % len(reference)]
            address = 0x1000 + 8 * (selector % 4)
            lsq.set_address(entry["seq"], address, 8)
            if entry["is_store"]:
                lsq.set_store_data_ready(entry["seq"])
            entry["addr"] = address
        elif kind == "release" and reference:
            entry = reference.pop(0)
            lsq.release(entry["seq"])
        elif kind == "squash" and reference:
            pivot = reference[selector % len(reference)]["seq"]
            lsq.squash_after(pivot)
            reference = [e for e in reference if e["seq"] <= pivot]
        # invariant: prior_store_addresses_known agrees with the reference
        for entry in reference:
            expected = all(
                other["addr"] is not None
                for other in reference
                if other["is_store"] and other["seq"] < entry["seq"]
            )
            assert lsq.prior_store_addresses_known(entry["seq"]) == expected
        assert len(lsq) == len(reference)
