"""Value-speculation engine tests: the Figure 1 scenarios as assertions,
misprediction recovery, retirement gating, model orderings."""

import pytest

from repro.core.latency import GOOD_LATENCIES, GREAT_LATENCIES, SUPER_LATENCIES
from repro.core.model import (
    GOOD_MODEL,
    GREAT_MODEL,
    SUPER_MODEL,
    SpeculativeExecutionModel,
)
from repro.core.variables import InvalidationScheme, ModelVariables
from repro.engine.config import ProcessorConfig
from repro.engine.pipeline import PipelineSimulator
from repro.engine.sim import run_baseline, run_trace
from repro.harness.figure1 import chain_trace, run_figure1
from repro.isa.opcodes import Opcode
from repro.trace.record import TraceRecord
from repro.vp.fixed import AlwaysConfident, ConfidentForPCs, FixedValuePredictor
from repro.vp.update_timing import UpdateTiming


def _cfg(**kwargs):
    defaults = dict(issue_width=4, window_size=24)
    defaults.update(kwargs)
    return ProcessorConfig(**defaults)


class TestFigure1Scenarios:
    """The paper's worked example, pinned cycle by cycle."""

    @pytest.fixture(scope="class")
    def scenarios(self):
        return {s.label: s for s in run_figure1()}

    def test_base_is_five_cycles(self, scenarios):
        assert scenarios["base"].cycles == 5

    def test_correct_prediction_speeds_up(self, scenarios):
        assert scenarios["super/correct"].cycles == 3
        assert scenarios["great/correct"].cycles == 3
        # good pays one verification cycle
        assert scenarios["good/correct"].cycles == 4

    def test_incorrect_prediction_ordering(self, scenarios):
        super_bad = scenarios["super/incorrect"].cycles
        great_bad = scenarios["great/incorrect"].cycles
        good_bad = scenarios["good/incorrect"].cycles
        # super recovers at base speed; great and good pay progressively
        assert super_bad == 5
        assert super_bad < great_bad < good_bad
        assert good_bad == 7

    def test_good_misprediction_matches_paper_narrative(self, scenarios):
        """'During t+2 is determined that instruction 2 can reissue.
        Instruction 2 gets executed during cycle t+3.  At t+3 instruction 3
        wakes up and is scheduled to execute at t+4.'"""
        timeline = scenarios["good/incorrect"].timeline
        assert (1, "EX*") in timeline[3]  # instruction 2 re-executes at t+3
        assert (2, "EX*") in timeline[4]  # instruction 3 re-executes at t+4


class TestNoPredictionEquivalence:
    def test_vp_engine_with_never_confident_matches_base(self):
        """With confidence never granting speculation, every model must
        reproduce base-processor timing exactly (paper Section 4.1: 'when
        computation does not include predicted values, all models have
        behavior identical to the base-processor')."""
        trace = chain_trace()
        base = run_baseline(trace, _cfg())
        for model in (SUPER_MODEL, GREAT_MODEL, GOOD_MODEL):
            sim = PipelineSimulator(
                trace,
                _cfg(),
                model,
                predictor=FixedValuePredictor({}),
                confidence=ConfidentForPCs(set()),
                update_timing=UpdateTiming.IMMEDIATE,
            )
            counters = sim.run()
            assert counters.cycles == base.cycles, model.name
            assert counters.speculated == 0


class TestMispredictionRecovery:
    def _run(self, model, trace, pcs_to_predict, wrong=True):
        offset = 1000 if wrong else 0
        predictor = FixedValuePredictor(
            {pc: value + offset for pc, value in pcs_to_predict.items()}
        )
        sim = PipelineSimulator(
            trace,
            _cfg(),
            model,
            predictor=predictor,
            confidence=ConfidentForPCs(set(pcs_to_predict)),
            update_timing=UpdateTiming.IMMEDIATE,
        )
        return sim.run()

    def test_misprediction_causes_reissue(self):
        trace = chain_trace()
        counters = self._run(GREAT_MODEL, trace, {0x1000: 1})
        assert counters.misspeculations == 1
        assert counters.reissues >= 1
        assert counters.retired == len(trace)

    def test_correct_prediction_never_reissues(self):
        trace = chain_trace()
        counters = self._run(GREAT_MODEL, trace, {0x1000: 1}, wrong=False)
        assert counters.misspeculations == 0
        assert counters.reissues == 0

    def test_architectural_result_independent_of_prediction(self):
        """Timing changes; retirement counts never do."""
        trace = chain_trace()
        for wrong in (False, True):
            counters = self._run(GOOD_MODEL, trace, {0x1000: 1, 0x1008: 2}, wrong)
            assert counters.retired == len(trace)


class TestModelOrdering:
    def test_super_never_slower_than_good_on_chain(self):
        trace = chain_trace()
        results = {}
        for model in (SUPER_MODEL, GREAT_MODEL, GOOD_MODEL):
            sim = PipelineSimulator(
                trace,
                _cfg(),
                model,
                predictor=FixedValuePredictor({0x1000: 1, 0x1008: 2}),
                confidence=ConfidentForPCs({0x1000, 0x1008}),
                update_timing=UpdateTiming.IMMEDIATE,
            )
            results[model.name] = sim.run().cycles
        assert results["super"] <= results["great"] <= results["good"]


class TestOracleConfidence:
    def test_oracle_never_misspeculates(self):
        from repro.programs.suite import kernel

        trace = kernel("compress").trace(max_instructions=3000)
        result = run_trace(
            trace, _cfg(), GREAT_MODEL, confidence="oracle", update_timing="I"
        )
        assert result.counters.misspeculations == 0
        assert result.counters.speculated > 0

    def test_oracle_beats_real_confidence(self):
        from repro.programs.suite import kernel

        trace = kernel("m88ksim").trace(max_instructions=4000)
        config = _cfg(issue_width=8, window_size=48)
        real = run_trace(trace, config, GREAT_MODEL, confidence="R",
                         update_timing="I")
        oracle = run_trace(trace, config, GREAT_MODEL, confidence="O",
                           update_timing="I")
        assert oracle.cycles <= real.cycles


class TestCompleteInvalidation:
    def test_complete_invalidation_squashes(self):
        variables = ModelVariables(invalidation=InvalidationScheme.COMPLETE)
        model = SpeculativeExecutionModel("complete", variables, GREAT_LATENCIES)
        trace = chain_trace()
        sim = PipelineSimulator(
            trace,
            _cfg(),
            model,
            predictor=FixedValuePredictor({0x1000: 999}),
            confidence=ConfidentForPCs({0x1000}),
            update_timing=UpdateTiming.IMMEDIATE,
        )
        counters = sim.run()
        assert counters.retired == len(trace)
        assert counters.squashed > 0


class TestRetirementGating:
    def test_predicted_instruction_retires_only_after_resolution(self):
        """No instruction may retire with an unresolved prediction — checked
        indirectly: the good model (1-cycle verification) must retire a
        single predicted instruction strictly later than super (0-cycle)."""
        trace = [
            TraceRecord(0, 0x1000, Opcode.ADD, (4,), 8, 7, next_pc=0x1008)
        ]
        cycles = {}
        for model in (SUPER_MODEL, GOOD_MODEL):
            sim = PipelineSimulator(
                trace,
                _cfg(),
                model,
                predictor=FixedValuePredictor({0x1000: 7}),
                confidence=ConfidentForPCs({0x1000}),
                update_timing=UpdateTiming.IMMEDIATE,
            )
            cycles[model.name] = sim.run().cycles
        assert cycles["good"] == cycles["super"] + 1


class TestSettingLabels:
    def test_run_trace_labels(self):
        trace = chain_trace()
        result = run_trace(trace, _cfg(), GREAT_MODEL, confidence="oracle",
                           update_timing="d")
        assert result.setting_label == "D/O"
        assert result.model_name == "great"
        base = run_baseline(trace, _cfg())
        assert base.setting_label == "base"

    def test_unknown_confidence_rejected(self):
        from repro.engine.sim import make_confidence

        with pytest.raises(ValueError):
            make_confidence("psychic")
