"""Unit tests for register naming."""

import pytest

from repro.isa.registers import (
    NUM_REGS,
    REG_ALIASES,
    REG_NAMES,
    Reg,
    canonical_reg_name,
    parse_reg,
)


def test_canonical_names():
    assert REG_NAMES[0] == "r0"
    assert REG_NAMES[31] == "r31"
    assert len(REG_NAMES) == NUM_REGS == 32


def test_parse_canonical():
    for i in range(NUM_REGS):
        assert parse_reg(f"r{i}") == i


def test_parse_aliases():
    assert parse_reg("zero") == 0
    assert parse_reg("sp") == 29
    assert parse_reg("ra") == 31
    assert parse_reg("a0") == 4
    assert parse_reg("t0") == 8
    assert parse_reg("s0") == 16


def test_parse_is_case_insensitive_and_strips_dollar():
    assert parse_reg("SP") == 29
    assert parse_reg("$t1") == 9
    assert parse_reg("  ra ") == 31


def test_parse_rejects_unknown():
    with pytest.raises(ValueError):
        parse_reg("r32")
    with pytest.raises(ValueError):
        parse_reg("bogus")


def test_reg_type():
    reg = Reg(5)
    assert str(reg) == "r5"
    assert repr(reg) == "Reg(5)"
    assert reg == 5
    with pytest.raises(ValueError):
        Reg(32)
    with pytest.raises(ValueError):
        Reg(-1)


def test_canonical_reg_name_bounds():
    assert canonical_reg_name(7) == "r7"
    with pytest.raises(ValueError):
        canonical_reg_name(99)


def test_aliases_all_in_range():
    for name, index in REG_ALIASES.items():
        assert 0 <= index < NUM_REGS, name
