"""Metamorphic properties of the speculative-execution models.

These encode the *meaning* of the latency spectrum: more optimistic
models never lose (beyond scheduling noise), zero predictions means
base-identical timing, and each latency variable is individually
monotone.
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.latency import GREAT_LATENCIES
from repro.core.model import (
    GOOD_MODEL,
    GREAT_MODEL,
    SUPER_MODEL,
    SpeculativeExecutionModel,
)
from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_baseline, run_trace
from repro.trace.synthetic import SyntheticTraceConfig, generate_synthetic_trace

_workloads = st.builds(
    SyntheticTraceConfig,
    length=st.integers(80, 300),
    chain_length=st.integers(1, 5),
    predictable_fraction=st.sampled_from([0.3, 0.7, 1.0]),
    value_period=st.integers(1, 4),
    load_every=st.sampled_from([0, 5]),
    branch_every=st.sampled_from([0, 12]),
    seed=st.integers(0, 50),
)

_slow = settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_CONFIG = ProcessorConfig(issue_width=4, window_size=16)


def _cycles(trace, model, confidence="O"):
    return run_trace(
        trace, _CONFIG, model, confidence=confidence, update_timing="I"
    ).cycles


@_slow
@given(workload=_workloads)
def test_optimism_ordering_super_great_good(workload):
    """A uniformly more optimistic latency assignment is never materially
    slower (scheduling anomalies allow a tiny tolerance)."""
    trace = generate_synthetic_trace(workload)
    super_c = _cycles(trace, SUPER_MODEL)
    great_c = _cycles(trace, GREAT_MODEL)
    good_c = _cycles(trace, GOOD_MODEL)
    tolerance = 1 + len(trace) // 50
    assert super_c <= great_c + tolerance
    assert great_c <= good_c + tolerance


@_slow
@given(
    workload=_workloads,
    field_name=st.sampled_from(
        [
            "equality_to_verification",
            "equality_to_invalidation",
            "invalidation_to_reissue",
            "verification_to_branch",
            "verification_addr_to_mem_access",
        ]
    ),
)
def test_each_latency_is_monotone(workload, field_name):
    """Adding cycles to any single latency variable never helps (much)."""
    trace = generate_synthetic_trace(workload)
    fast = SpeculativeExecutionModel(
        "fast", GREAT_MODEL.variables,
        replace(GREAT_LATENCIES, **{field_name: 0}),
    )
    slow = SpeculativeExecutionModel(
        "slow", GREAT_MODEL.variables,
        replace(GREAT_LATENCIES, **{field_name: 3}),
    )
    tolerance = 1 + len(trace) // 50
    assert _cycles(trace, fast) <= _cycles(trace, slow) + tolerance


@_slow
@given(workload=_workloads)
def test_zero_speculation_equals_base(workload):
    """With no confident predictions, every model is cycle-identical to
    the base processor (paper Section 4.1)."""
    from repro.engine.pipeline import PipelineSimulator
    from repro.vp.fixed import ConfidentForPCs, FixedValuePredictor
    from repro.vp.update_timing import UpdateTiming

    trace = generate_synthetic_trace(workload)
    base = run_baseline(trace, _CONFIG)
    for model in (SUPER_MODEL, GOOD_MODEL):
        sim = PipelineSimulator(
            trace,
            _CONFIG,
            model,
            predictor=FixedValuePredictor({}),
            confidence=ConfidentForPCs(set()),
            update_timing=UpdateTiming.IMMEDIATE,
        )
        assert sim.run().cycles == base.cycles
