"""Branch-predictor selection tests (engine wiring + sweep)."""

import pytest

from repro.engine.config import ProcessorConfig
from repro.engine.pipeline import PipelineSimulator
from repro.engine.sim import run_baseline
from repro.frontend.bimodal import BimodalPredictor
from repro.frontend.gshare import GsharePredictor
from repro.frontend.local import LocalHistoryPredictor
from repro.frontend.tournament import TournamentPredictor
from repro.programs.suite import kernel


@pytest.fixture(scope="module")
def trace():
    return kernel("go").trace(max_instructions=3000)


@pytest.mark.parametrize(
    "name,cls",
    [
        ("gshare", GsharePredictor),
        ("bimodal", BimodalPredictor),
        ("local", LocalHistoryPredictor),
        ("tournament", TournamentPredictor),
    ],
)
def test_engine_instantiates_selected_predictor(trace, name, cls):
    sim = PipelineSimulator(
        trace, ProcessorConfig(4, 24, branch_predictor=name)
    )
    assert isinstance(sim.bpred, cls)
    counters = sim.run()
    assert counters.retired == 3000


def test_invalid_predictor_rejected():
    with pytest.raises(ValueError, match="branch_predictor"):
        ProcessorConfig(4, 24, branch_predictor="perceptron")


def test_tournament_beats_bimodal_on_go(trace):
    bimodal = run_baseline(
        trace, ProcessorConfig(8, 48, branch_predictor="bimodal")
    )
    tournament = run_baseline(
        trace, ProcessorConfig(8, 48, branch_predictor="tournament")
    )
    assert (
        tournament.counters.branch_mispredictions
        < bimodal.counters.branch_mispredictions
    )
    assert tournament.cycles < bimodal.cycles


def test_branch_predictor_sweep():
    from repro.harness.sweeps import branch_predictor_sweep

    points = branch_predictor_sweep(
        max_instructions=1500, benchmarks=["go"]
    )
    labels = [p.label for p in points]
    assert labels == ["bimodal", "local", "gshare (paper)", "tournament"]
    for p in points:
        assert p.speedup > 0.85
