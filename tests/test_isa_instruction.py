"""Unit tests for the Instruction representation."""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


def test_source_regs_r_format():
    instr = Instruction(Opcode.ADD, rd=3, rs=1, rt=2)
    assert instr.source_regs() == (1, 2)


def test_source_regs_omits_zero_register():
    instr = Instruction(Opcode.ADD, rd=3, rs=0, rt=2)
    assert instr.source_regs() == (2,)
    instr = Instruction(Opcode.OR, rd=3, rs=5, rt=0)
    assert instr.source_regs() == (5,)


def test_source_regs_immediate():
    instr = Instruction(Opcode.ADDI, rd=3, rs=7, imm=10)
    assert instr.source_regs() == (7,)


def test_source_regs_load_and_store():
    load = Instruction(Opcode.LD, rd=4, rs=8, imm=16)
    assert load.source_regs() == (8,)
    store = Instruction(Opcode.SD, rs=8, rt=4, imm=16)
    assert store.source_regs() == (8, 4)


def test_source_regs_branches():
    branch = Instruction(Opcode.BEQ, rs=1, rt=2, imm=0x1000)
    assert branch.source_regs() == (1, 2)
    zero_branch = Instruction(Opcode.BEQZ, rs=9, imm=0x1000)
    assert zero_branch.source_regs() == (9,)


def test_source_regs_jumps():
    assert Instruction(Opcode.J, imm=0x1000).source_regs() == ()
    assert Instruction(Opcode.JAL, rd=31, imm=0x1000).source_regs() == ()
    assert Instruction(Opcode.JR, rs=31).source_regs() == (31,)
    assert Instruction(Opcode.JALR, rd=31, rs=5).source_regs() == (5,)


def test_writes_register_excludes_r0_destination():
    assert Instruction(Opcode.ADD, rd=1, rs=2, rt=3).writes_register
    assert not Instruction(Opcode.ADD, rd=0, rs=2, rt=3).writes_register
    assert not Instruction(Opcode.SD, rs=1, rt=2).writes_register


def test_render_formats():
    assert str(Instruction(Opcode.ADD, rd=3, rs=1, rt=2)) == "add r3, r1, r2"
    assert str(Instruction(Opcode.ADDI, rd=3, rs=1, imm=-5)) == "addi r3, r1, -5"
    assert str(Instruction(Opcode.LI, rd=3, imm=100)) == "li r3, 100"
    assert str(Instruction(Opcode.LD, rd=4, rs=8, imm=16)) == "ld r4, 16(r8)"
    assert str(Instruction(Opcode.SD, rs=8, rt=4, imm=16)) == "sd r4, 16(r8)"
    assert (
        str(Instruction(Opcode.BEQ, rs=1, rt=2, imm=0x1000)) == "beq r1, r2, 0x1000"
    )
    assert str(Instruction(Opcode.JR, rs=31)) == "jr r31"
    assert str(Instruction(Opcode.NOP)) == "nop"


def test_render_prefers_label():
    instr = Instruction(Opcode.J, imm=0x1000, label="loop")
    assert str(instr) == "j loop"


def test_instruction_is_hashable_and_comparable():
    a = Instruction(Opcode.ADD, rd=1, rs=2, rt=3)
    b = Instruction(Opcode.ADD, rd=1, rs=2, rt=3)
    assert a == b
    assert hash(a) == hash(b)
    # labels don't affect equality (they're presentation only)
    c = Instruction(Opcode.J, imm=8, label="x")
    d = Instruction(Opcode.J, imm=8, label="y")
    assert c == d
