"""Golden regression statistics.

The simulator is fully deterministic, so exact cycle and event counts for
a fixed workload/configuration are a high-resolution regression net: any
engine change that alters timing shows up here immediately.

If a change is *intended* to alter timing, regenerate the table with::

    python - <<'EOF'
    from repro.programs import benchmark_suite
    from repro.engine import ProcessorConfig, run_baseline, run_trace
    from repro.core import GREAT_MODEL
    cfg = ProcessorConfig(8, 48)
    for spec in benchmark_suite():
        trace = spec.trace(max_instructions=3000)
        base = run_baseline(trace, cfg)
        vp = run_trace(trace, cfg, GREAT_MODEL, confidence="R",
                       update_timing="D")
        c = vp.counters
        print(spec.name, base.cycles, vp.cycles, c.predictions,
              c.speculated, c.misspeculations)
    EOF

and say so in the commit message.
"""

import pytest

from repro.core.model import GREAT_MODEL
from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_baseline, run_trace
from repro.programs.suite import kernel, kernel_names

#: (base_cycles, vp_cycles, predictions, speculated, misspeculations)
#: at 3000-instruction traces on 8/48, great model, D/R.
GOLDEN = {
    "compress": (3626, 3605, 2242, 244, 8),
    "gcc": (2023, 1984, 2008, 247, 15),
    "go": (942, 987, 1940, 827, 7),
    "ijpeg": (1173, 1186, 2463, 508, 50),
    "m88ksim": (1555, 1494, 2174, 599, 27),
    "perl": (1905, 1758, 1983, 883, 24),
    "vortex": (1438, 1447, 1776, 382, 11),
    "xlisp": (2203, 2188, 1771, 276, 5),
}

_CONFIG = ProcessorConfig(issue_width=8, window_size=48)


@pytest.mark.parametrize("name", kernel_names())
def test_golden_stats(name):
    trace = kernel(name).trace(max_instructions=3000)
    base = run_baseline(trace, _CONFIG)
    vp = run_trace(trace, _CONFIG, GREAT_MODEL, confidence="R",
                   update_timing="D")
    measured = (
        base.cycles,
        vp.cycles,
        vp.counters.predictions,
        vp.counters.speculated,
        vp.counters.misspeculations,
    )
    assert measured == GOLDEN[name], (
        f"{name}: measured {measured} != golden {GOLDEN[name]} — "
        "timing changed; regenerate GOLDEN if intentional"
    )
