"""Tests for the resolution-policy and confidence-strength sweeps."""

from repro.harness.sweeps import (
    confidence_strength_sweep,
    resolution_policy_sweep,
)

_KW = dict(max_instructions=1500, benchmarks=["m88ksim"])


def test_resolution_policy_sweep_points():
    points = resolution_policy_sweep(**_KW)
    by_label = {p.label: p.speedup for p in points}
    assert set(by_label) == {
        "valid-only (paper)",
        "speculative-branches",
        "speculative-memory",
        "speculative-both",
    }
    # removing the network wait can only help in this model (branch
    # outcomes are still only trusted once inputs are valid)
    assert by_label["speculative-both"] >= by_label["valid-only (paper)"] - 0.02


def test_confidence_strength_sweep_points():
    points = confidence_strength_sweep(**_KW, counter_bits=(1, 3))
    labels = [p.label for p in points]
    assert labels == ["1-bit counters", "3-bit counters", "oracle"]
    by_label = {p.label: p.speedup for p in points}
    # the oracle bounds every realistic estimator
    assert by_label["oracle"] >= max(
        v for k, v in by_label.items() if k != "oracle"
    ) - 0.02


def test_predictor_size_sweep_monotone():
    from repro.harness.sweeps import predictor_size_sweep

    points = predictor_size_sweep(**_KW, table_bits=(8, 16))
    small, large = points[0].speedup, points[1].speedup
    assert large >= small - 0.02  # bigger tables never hurt much


def test_frontend_idealism_sweep():
    from repro.harness.sweeps import frontend_idealism_sweep

    points = frontend_idealism_sweep(
        max_instructions=1500, benchmarks=["xlisp"]
    )
    assert [p.label for p in points] == ["ideal targets (paper)", "BTB + RAS"]
    for p in points:
        assert p.speedup > 0.8


def test_relaxed_frontend_engine_wiring():
    from repro.engine.config import ProcessorConfig
    from repro.engine.pipeline import PipelineSimulator
    from repro.programs.suite import kernel

    trace = kernel("xlisp").trace(max_instructions=1500)
    sim = PipelineSimulator(
        trace, ProcessorConfig(4, 24, ideal_branch_targets=False)
    )
    sim.run()
    assert sim.fetch_engine.btb is not None
    assert sim.fetch_engine.ras is not None
    assert sim.fetch_engine.ras.pushes > 0  # calls exercised the RAS


def test_experiment_registry_contains_new_ablations():
    from repro.harness.experiments import EXPERIMENTS

    for key in ("abl-resolution", "abl-confidence", "abl-tables",
                "abl-frontend"):
        assert key in EXPERIMENTS
    text = EXPERIMENTS["abl-resolution"].run(**_KW)
    assert "valid-only" in text
