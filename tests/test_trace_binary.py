"""Binary trace format tests (round trip, compactness, malformed input)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.opcodes import Opcode
from repro.trace import (
    TraceRecord,
    dumps_trace,
    dumps_trace_binary,
    loads_trace_binary,
    read_trace_binary,
    write_trace_binary,
)
from repro.trace.binary import BinaryTraceError

# seq is positional in the binary format (capture traces are always
# 0..n-1), so the strategy generates records and renumbers.
_record = st.builds(
    TraceRecord,
    seq=st.just(0),
    pc=st.integers(0, 1 << 40).map(lambda v: v & ~7),
    opcode=st.sampled_from(list(Opcode)),
    src_regs=st.lists(st.integers(1, 31), max_size=2).map(tuple),
    dest_reg=st.one_of(st.none(), st.integers(1, 31)),
    dest_value=st.one_of(st.none(), st.integers(0, (1 << 64) - 1)),
    mem_addr=st.one_of(st.none(), st.integers(0, 1 << 40)),
    mem_size=st.one_of(st.none(), st.sampled_from([1, 4, 8])),
    branch_taken=st.one_of(st.none(), st.booleans()),
    next_pc=st.integers(0, 1 << 40),
)


def _renumber(records):
    """Renumber sequentially and normalize field coupling the way real
    captures produce them (dest_value iff dest_reg, mem_size iff mem_addr)."""
    out = []
    for i, rec in enumerate(records):
        has_dest = rec.dest_reg is not None
        has_mem = rec.mem_addr is not None
        out.append(
            TraceRecord(
                i, rec.pc, rec.opcode, rec.src_regs,
                rec.dest_reg,
                (rec.dest_value or 0) if has_dest else None,
                rec.mem_addr,
                (rec.mem_size or 1) if has_mem else None,
                rec.branch_taken, rec.next_pc,
            )
        )
    return out


@given(records=st.lists(_record, max_size=30))
def test_binary_round_trip(records):
    records = _renumber(records)
    assert loads_trace_binary(dumps_trace_binary(records)) == records


def test_binary_round_trip_on_kernel_trace():
    from repro.programs.suite import kernel

    trace = kernel("compress").trace(max_instructions=3000)
    blob = dumps_trace_binary(trace)
    assert loads_trace_binary(blob) == trace


def test_binary_is_much_smaller_than_text():
    from repro.programs.suite import kernel

    trace = kernel("perl").trace(max_instructions=3000)
    text_size = len(dumps_trace(trace))
    binary_size = len(dumps_trace_binary(trace))
    assert binary_size < text_size / 3


def test_file_round_trip(tmp_path):
    from repro.programs.suite import kernel

    trace = kernel("gcc").trace(max_instructions=500)
    path = tmp_path / "trace.bin"
    size = write_trace_binary(trace, path)
    assert path.stat().st_size == size
    assert read_trace_binary(path) == trace


def test_bad_magic_rejected():
    with pytest.raises(BinaryTraceError, match="magic"):
        loads_trace_binary(b"NOPE" + bytes(10))


def test_truncated_data_rejected():
    from repro.programs.suite import kernel

    blob = dumps_trace_binary(kernel("gcc").trace(max_instructions=50))
    with pytest.raises(BinaryTraceError):
        loads_trace_binary(blob[: len(blob) // 2])


def test_empty_trace():
    assert loads_trace_binary(dumps_trace_binary([])) == []
