"""scripts/perf_diff.py: graceful degradation on missing/old records."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "perf_diff.py"


@pytest.fixture(scope="module")
def perf_diff():
    spec = importlib.util.spec_from_file_location("perf_diff", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["perf_diff"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("perf_diff", None)


def _record(**overrides) -> dict:
    record = {
        "git_revision": "abc1234",
        "trace_limit": 1000,
        "reps_best_of": 3,
        "model_aggregate_ips": {"base": 100_000, "good": 80_000},
    }
    record.update(overrides)
    return record


def test_normal_diff_exits_zero(perf_diff, tmp_path, capsys):
    new = tmp_path / "new.json"
    old = tmp_path / "old.json"
    new.write_text(json.dumps(_record()))
    old.write_text(json.dumps(_record(model_aggregate_ips={"base": 50_000})))
    assert perf_diff.main([str(new), "--baseline", str(old)]) == 0
    out = capsys.readouterr().out
    assert "2.000" in out  # 100k vs 50k


def test_missing_new_record_is_informational(perf_diff, tmp_path, capsys):
    assert perf_diff.main([str(tmp_path / "nope.json")]) == 0
    out = capsys.readouterr().out
    assert "cannot read" in out and "skipping" in out


def test_missing_baseline_is_informational(perf_diff, tmp_path, capsys):
    new = tmp_path / "new.json"
    new.write_text(json.dumps(_record()))
    assert perf_diff.main([str(new), "--baseline",
                           str(tmp_path / "absent.json")]) == 0
    out = capsys.readouterr().out
    assert "skipping" in out


def test_malformed_baseline_is_informational(perf_diff, tmp_path, capsys):
    new = tmp_path / "new.json"
    bad = tmp_path / "bad.json"
    new.write_text(json.dumps(_record()))
    bad.write_text("{not json")
    assert perf_diff.main([str(new), "--baseline", str(bad)]) == 0
    assert "not valid JSON" in capsys.readouterr().out


def test_non_object_baseline_is_informational(perf_diff, tmp_path, capsys):
    new = tmp_path / "new.json"
    old = tmp_path / "old.json"
    new.write_text(json.dumps(_record()))
    old.write_text(json.dumps([1, 2, 3]))  # pre-dict schema
    assert perf_diff.main([str(new), "--baseline", str(old)]) == 0
    assert "unrecognised schema" in capsys.readouterr().out


def test_old_schema_without_aggregates_is_informational(perf_diff, tmp_path, capsys):
    """A baseline record with neither aggregates nor usable points
    degrades to a note, not a traceback."""
    new = tmp_path / "new.json"
    old = tmp_path / "old.json"
    new.write_text(json.dumps(_record()))
    old.write_text(json.dumps({
        "git_revision": "old0000",
        "points": [{"benchmark": "compress", "seconds": 1.0}],  # old keys
    }))
    assert perf_diff.main([str(new), "--baseline", str(old)]) == 0
    assert "no usable per-model aggregates" in capsys.readouterr().out


def test_aggregates_recomputed_from_points(perf_diff):
    report = {
        "points": [
            {"model": "good", "instructions": 1000, "best_seconds": 0.5},
            {"model": "good", "instructions": 1000, "best_seconds": 0.5},
            {"benchmark": "stray-old-schema-point"},  # skipped, not fatal
        ]
    }
    assert perf_diff._model_aggregates(report) == {"good": 2000}


def test_fail_below_still_gates(perf_diff, tmp_path, capsys):
    new = tmp_path / "new.json"
    old = tmp_path / "old.json"
    new.write_text(json.dumps(_record(model_aggregate_ips={"base": 50_000})))
    old.write_text(json.dumps(_record(model_aggregate_ips={"base": 100_000})))
    assert perf_diff.main([str(new), "--baseline", str(old),
                           "--fail-below", "0.9"]) == 1


def test_specialized_block_rendered_and_old_schema_tolerated(
    perf_diff, tmp_path, capsys
):
    """A fresh record with the PR 7 ``specialized`` block renders the
    paired table even when the committed baseline predates it."""
    new = tmp_path / "new.json"
    old = tmp_path / "old.json"
    new.write_text(json.dumps(_record(
        specialized={"grid_speedup": 1.08, "grid_lanes": 78},
    )))
    old.write_text(json.dumps(_record()))  # no specialized block
    assert perf_diff.main([str(new), "--baseline", str(old)]) == 0
    out = capsys.readouterr().out
    assert "specialized engine" in out
    assert "78 lanes" in out and "1.080x" in out
    # Markdown rendering too.
    assert perf_diff.main([str(new), "--baseline", str(old),
                           "--markdown"]) == 0
    out = capsys.readouterr().out
    assert "**Specialized engine**" in out and "1.080x" in out


def test_specialized_rows_absent_or_malformed(perf_diff):
    assert perf_diff.specialized_rows(_record(), _record()) == []
    assert perf_diff.specialized_rows(
        _record(specialized={"grid_speedup": "fast"}), _record()
    ) == []
    rows = perf_diff.specialized_rows(
        _record(specialized={"grid_speedup": 1.1, "grid_lanes": 78}),
        _record(specialized={"grid_speedup": 1.05, "grid_lanes": 78}),
    )
    assert rows == [("full grid (78 lanes)", 1.1, 1.05)]


def test_service_block_rendered_and_old_schema_tolerated(
    perf_diff, tmp_path, capsys
):
    """A fresh record carrying the service SLO block renders it even
    when the committed baseline predates the simulation service."""
    new = tmp_path / "new.json"
    old = tmp_path / "old.json"
    new.write_text(json.dumps(_record(
        service={
            "p50_ms": 2.5, "p95_ms": 4.75, "p99_ms": 6.0,
            "throughput_rps": 950.0, "warm_hit_ratio": 1.0,
            "saturation_clients": 4,
        },
    )))
    old.write_text(json.dumps(_record()))  # no service block
    assert perf_diff.main([str(new), "--baseline", str(old)]) == 0
    out = capsys.readouterr().out
    assert "service SLO" in out
    assert "latency p95 (ms)" in out and "4.750" in out
    assert "saturation point (clients)" in out
    assert perf_diff.main([str(new), "--baseline", str(old),
                           "--markdown"]) == 0
    out = capsys.readouterr().out
    assert "**Simulation service SLO**" in out and "950.000" in out


def test_service_rows_absent_malformed_and_paired(perf_diff):
    assert perf_diff.service_rows(_record(), _record()) == []
    # malformed blocks (wrong type, non-numeric p50) degrade to no rows
    assert perf_diff.service_rows(
        _record(service="fast"), _record()
    ) == []
    assert perf_diff.service_rows(
        _record(service={"p50_ms": "quick"}), _record()
    ) == []
    rows = perf_diff.service_rows(
        _record(service={"p50_ms": 2.0, "p95_ms": 4.0,
                         "warm_hit_ratio": 1.0}),
        _record(service={"p50_ms": 3.0}),
    )
    assert ("latency p50 (ms)", 2.0, 3.0) in rows
    assert ("latency p95 (ms)", 4.0, None) in rows
    # fields missing from the fresh block are skipped, not rendered
    assert all(label != "latency p99 (ms)" for label, *_ in rows)


def test_sampled_block_rendered_and_old_schema_tolerated(
    perf_diff, tmp_path, capsys
):
    """A fresh record carrying the sampled block renders it even when
    the committed baseline predates the streaming trace plane."""
    new = tmp_path / "new.json"
    old = tmp_path / "old.json"
    new.write_text(json.dumps(_record(
        sampled={
            "chunk_records": 16_000,
            "phases": 3,
            "workloads": {
                "phased_alu": {"cpi_error": 0.0009, "speedup": 13.0},
                "phased_mix": {"cpi_error": 0.0016, "speedup": 16.7},
            },
        },
    )))
    old.write_text(json.dumps(_record()))  # no sampled block
    assert perf_diff.main([str(new), "--baseline", str(old)]) == 0
    out = capsys.readouterr().out
    assert "phase-sampled vs exact" in out
    assert "phased_alu CPI error" in out and "0.09%" in out
    assert "phased_mix speedup" in out and "16.7x" in out
    assert perf_diff.main([str(new), "--baseline", str(old),
                           "--markdown"]) == 0
    out = capsys.readouterr().out
    assert "**Phase-sampled vs exact**" in out and "13.0x" in out


def test_sampled_rows_absent_malformed_and_paired(perf_diff):
    assert perf_diff.sampled_rows(_record(), _record()) == []
    # malformed blocks (wrong type, workloads not a dict) degrade cleanly
    assert perf_diff.sampled_rows(_record(sampled="fast"), _record()) == []
    assert perf_diff.sampled_rows(
        _record(sampled={"workloads": [1, 2]}), _record()
    ) == []
    rows = perf_diff.sampled_rows(
        _record(sampled={"workloads": {
            "w": {"cpi_error": 0.01, "speedup": 12.0},
            "broken": "not-a-dict",
        }}),
        _record(sampled={"workloads": {"w": {"cpi_error": 0.02}}}),
    )
    assert ("w CPI error", "1.00%", "2.00%") in rows
    assert ("w speedup", "12.0x", "-") in rows
    assert all(not label.startswith("broken") for label, *_ in rows)


def _ablation_block(**overrides) -> dict:
    block = {
        "fingerprint": "f" * 24,
        "baseline_speedup": 1.21,
        "importance": {
            "confidence-gating": 0.18,
            "verification-network": 0.05,
            "delayed-update": -0.01,
        },
        "harmful": ["delayed-update"],
    }
    block.update(overrides)
    return block


def test_ablation_block_rendered_and_old_schema_tolerated(
    perf_diff, tmp_path, capsys
):
    new = tmp_path / "new.json"
    old = tmp_path / "old.json"
    new.write_text(json.dumps(_record(ablation=_ablation_block())))
    old.write_text(json.dumps(_record()))  # no ablation block
    assert perf_diff.main([str(new), "--baseline", str(old)]) == 0
    out = capsys.readouterr().out
    assert "ablation importance" in out
    assert "confidence-gating" in out and "+0.1800" in out
    assert "delayed-update [HARMFUL]" in out and "-0.0100" in out
    assert "baseline speedup" in out and "1.2100" in out
    assert perf_diff.main([str(new), "--baseline", str(old),
                           "--markdown"]) == 0
    out = capsys.readouterr().out
    assert "**Ablation importance**" in out
    # Ranked by fresh importance, committed cells degrade to "-".
    lines = [l for l in out.splitlines() if l.startswith("| confidence")]
    assert lines and lines[0].endswith("| - |")


def test_ablation_rows_ranked_and_paired(perf_diff):
    rows = perf_diff.ablation_rows(
        _record(ablation=_ablation_block()),
        _record(ablation=_ablation_block(
            importance={"confidence-gating": 0.20}, harmful=[],
            baseline_speedup=1.19,
        )),
    )
    labels = [label for label, *_ in rows]
    assert labels == [
        "baseline speedup",
        "confidence-gating",
        "verification-network",
        "delayed-update [HARMFUL]",
    ]
    assert ("confidence-gating", "+0.1800", "+0.2000") in rows
    assert ("verification-network", "+0.0500", "-") in rows
    assert ("baseline speedup", "1.2100", "1.1900") in rows


def test_ablation_rows_absent_or_malformed(perf_diff):
    assert perf_diff.ablation_rows(_record(), _record()) == []
    assert perf_diff.ablation_rows(
        _record(ablation="broken"), _record()
    ) == []
    assert perf_diff.ablation_rows(
        _record(ablation={"importance": "not-a-dict"}), _record()
    ) == []
    # Non-numeric importances are dropped; all-dropped means no block.
    assert perf_diff.ablation_rows(
        _record(ablation={"importance": {"x": "fast"}}), _record()
    ) == []


def test_ablation_rows_accept_standalone_report(perf_diff):
    report = {
        "v": 1,
        "kind": "ablation",
        "baseline": {"speedup": 1.1},
        "components": [
            {"components": ["a"], "importance": 0.2, "harmful": False},
            {"components": ["b", "c"], "importance": -0.1, "harmful": True},
            "not-a-dict",
        ],
    }
    rows = perf_diff.ablation_rows(report, {})
    assert ("baseline speedup", "1.1000", "-") in rows
    assert ("a", "+0.2000", "-") in rows
    assert ("b+c [HARMFUL]", "-0.1000", "-") in rows
