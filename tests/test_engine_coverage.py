"""Targeted coverage of engine paths not exercised elsewhere: stall
attribution, icache stalls mid-run, store commits, multi-source
speculation chains."""

import pytest

from repro.core.model import GREAT_MODEL, SUPER_MODEL
from repro.engine.config import ProcessorConfig
from repro.engine.pipeline import PipelineSimulator
from repro.engine.sim import run_baseline, run_trace
from repro.harness.figure1 import chain_trace
from repro.isa.opcodes import Opcode
from repro.trace.record import TraceRecord
from repro.vp.fixed import ConfidentForPCs, FixedValuePredictor
from repro.vp.update_timing import UpdateTiming


def _warm(trace):
    from repro.mem.hierarchy import make_paper_hierarchy

    hierarchy = make_paper_hierarchy()
    for rec in trace:
        hierarchy.l1i.access(rec.pc)
    return hierarchy


def test_window_full_stall_counted():
    # a slow head (fdiv) blocks retirement; a tiny window must stall dispatch
    trace = [TraceRecord(0, 0x1000, Opcode.FDIV, (4,), 8, 1, next_pc=0x1008)]
    trace += [
        TraceRecord(i, 0x1000 + 8 * i, Opcode.ADD, (5,), 9 + i % 8, i,
                    next_pc=0x1008 + 8 * i)
        for i in range(1, 30)
    ]
    sim = PipelineSimulator(trace, ProcessorConfig(4, 4), hierarchy=_warm(trace))
    counters = sim.run()
    assert counters.stall_window_full > 0


def test_lsq_full_stall_counted():
    # window larger than the LSQ is impossible by construction (the LSQ is
    # window-sized), so force it by flooding loads into a window where the
    # head's slow producer keeps everything resident
    trace = [TraceRecord(0, 0x1000, Opcode.FDIV, (4,), 8, 1, next_pc=0x1008)]
    trace += [
        TraceRecord(i, 0x1000 + 8 * i, Opcode.LD, (8,), 9 + i % 8, i,
                    0x200000 + 8 * i, 8, None, 0x1008 + 8 * i)
        for i in range(1, 40)
    ]
    sim = PipelineSimulator(
        trace, ProcessorConfig(4, 16), hierarchy=_warm(trace)
    )
    counters = sim.run()
    # loads wait on the fdiv-fed base register; the window fills first, so
    # at minimum the window-full stall fires; both counters are exercised
    assert (counters.stall_window_full + counters.stall_lsq_full) > 0


def test_icache_stall_attributed_to_fetch():
    # a trace spanning many I-cache blocks: cold misses stall fetch
    trace = [
        TraceRecord(i, 0x1000 + 256 * i, Opcode.ADD, (4,), 8, i,
                    next_pc=0x1000 + 256 * (i + 1))
        for i in range(40)
    ]
    sim = PipelineSimulator(trace, ProcessorConfig(4, 24))
    sim.run()
    assert sim.fetch_engine.icache_stall_cycles > 0
    assert sim.counters.stall_fetch_empty > 0


def test_store_commit_writes_dcache():
    trace = [
        TraceRecord(0, 0x1000, Opcode.SD, (29, 4), None, None, 0x280000, 8,
                    None, 0x1008),
    ]
    sim = PipelineSimulator(trace, ProcessorConfig(4, 8))
    sim.run()
    assert sim.hierarchy.l1d.stats.accesses >= 1  # the commit write


def test_two_independent_wrong_predictions_recover():
    """Two separate misprediction sources invalidating disjoint consumers."""
    records = []
    # two independent chains: (0 -> 1) and (2 -> 3)
    records.append(TraceRecord(0, 0x1000, Opcode.ADD, (4,), 8, 10,
                               next_pc=0x1008))
    records.append(TraceRecord(1, 0x1008, Opcode.ADD, (8,), 9, 20,
                               next_pc=0x1010))
    records.append(TraceRecord(2, 0x1010, Opcode.ADD, (5,), 10, 30,
                               next_pc=0x1018))
    records.append(TraceRecord(3, 0x1018, Opcode.ADD, (10,), 11, 40,
                               next_pc=0x1020))
    sim = PipelineSimulator(
        records,
        ProcessorConfig(4, 24),
        GREAT_MODEL,
        predictor=FixedValuePredictor({0x1000: 999, 0x1010: 888}),  # both wrong
        confidence=ConfidentForPCs({0x1000, 0x1010}),
        update_timing=UpdateTiming.IMMEDIATE,
    )
    counters = sim.run()
    assert counters.retired == 4
    assert counters.misspeculations == 2
    assert counters.reissues >= 2


def test_chained_predictions_both_correct_resolve_in_one_transaction():
    """i1 and i2 both predicted correctly: under super/flattened, i2's
    prediction resolves in i1's verification transaction."""
    trace = chain_trace()
    sim = PipelineSimulator(
        trace,
        ProcessorConfig(4, 24),
        SUPER_MODEL,
        predictor=FixedValuePredictor({0x1000: 1, 0x1008: 2}),
        confidence=ConfidentForPCs({0x1000, 0x1008}),
        update_timing=UpdateTiming.IMMEDIATE,
    )
    counters = sim.run()
    assert counters.verification_events == 2
    assert counters.invalidation_events == 0
    assert counters.reissues == 0


def test_mixed_outcome_chain():
    """i1 correct, i2 wrong: i1 verifies, i2 invalidates, i3 recovers."""
    trace = chain_trace()
    sim = PipelineSimulator(
        trace,
        ProcessorConfig(4, 24),
        GREAT_MODEL,
        predictor=FixedValuePredictor({0x1000: 1, 0x1008: 777}),
        confidence=ConfidentForPCs({0x1000, 0x1008}),
        update_timing=UpdateTiming.IMMEDIATE,
    )
    counters = sim.run()
    assert counters.retired == 3
    assert counters.misspeculations == 1
    assert counters.verification_events >= 1
    assert counters.invalidation_events >= 1


def test_fetch_queue_is_bounded():
    trace = [
        TraceRecord(i, 0x1000 + 8 * i, Opcode.ADD, (4,), 8 + i % 8, i,
                    next_pc=0x1008 + 8 * i)
        for i in range(200)
    ]
    config = ProcessorConfig(4, 8, dispatch_latency=2)
    sim = PipelineSimulator(trace, config)
    sim.run()
    # the internal queue cap is fetch_width * (dispatch_latency + 2)
    assert len(sim._fetch_queue) <= config.fetch_width * (
        config.dispatch_latency + 2
    )


def test_compare_runs_tool(tmp_path):
    import json
    import sys

    sys.path.insert(0, "scripts")
    from compare_runs import compare

    old = {"figure3": [{"config": "4/24", "setting": "D/R",
                        "model": "good", "speedup": 1.0}],
           "figure4": [{"config": "4/24", "timing": "D", "CH": 0.3,
                        "CL": 0.2, "IH": 0.01, "IL": 0.49}]}
    new = json.loads(json.dumps(old))
    assert compare(old, new, 0.01) == []
    new["figure3"][0]["speedup"] = 1.2
    diffs = compare(old, new, 0.01)
    assert len(diffs) == 1 and "1.2000" in diffs[0]
