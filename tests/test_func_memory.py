"""MemoryImage tests, including chunk-boundary properties."""

import pytest
from hypothesis import given, strategies as st

from repro.func.memory_image import MemoryImage, _CHUNK_SIZE


def test_uninitialized_memory_reads_zero():
    mem = MemoryImage()
    assert mem.load_uint(0x5000, 8) == 0
    assert mem.load_bytes(123456, 16) == bytes(16)


def test_store_load_round_trip():
    mem = MemoryImage()
    mem.store_uint(0x2000, 0xDEADBEEF, 8)
    assert mem.load_uint(0x2000, 8) == 0xDEADBEEF
    assert mem.load_uint(0x2000, 4) == 0xDEADBEEF
    assert mem.load_uint(0x2004, 4) == 0


def test_value_truncated_to_size():
    mem = MemoryImage()
    mem.store_uint(0x100, 0x11223344, 1)
    assert mem.load_uint(0x100, 1) == 0x44


@given(
    address=st.integers(0, 1 << 24),
    data=st.binary(min_size=1, max_size=3 * _CHUNK_SIZE),
)
def test_cross_chunk_round_trip(address, data):
    mem = MemoryImage()
    mem.store_bytes(address, data)
    assert mem.load_bytes(address, len(data)) == data


def test_chunk_boundary_straddle():
    mem = MemoryImage()
    boundary = _CHUNK_SIZE
    mem.store_uint(boundary - 4, 0x1122334455667788, 8)
    assert mem.load_uint(boundary - 4, 8) == 0x1122334455667788
    assert mem.touched_chunks() == 2


def test_cstring_helper():
    mem = MemoryImage()
    mem.store_bytes(0x300, b"hello\x00world")
    assert mem.load_cstring(0x300) == "hello"


def test_negative_access_rejected():
    mem = MemoryImage()
    with pytest.raises(ValueError):
        mem.load_bytes(-1, 4)
    with pytest.raises(ValueError):
        mem.store_bytes(-8, b"x")
