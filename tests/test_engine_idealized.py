"""Idealization-flag tests: perfect branches/caches, and the cross-check
that the real engine never beats the analytic dataflow limit."""

import pytest

from repro.analysis.limits import limit_study
from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_baseline
from repro.mem.hierarchy import PerfectCache, make_paper_hierarchy
from repro.programs.suite import kernel


@pytest.fixture(scope="module")
def go_trace():
    return kernel("go").trace(max_instructions=4000)


def test_perfect_branches_eliminate_mispredictions(go_trace):
    result = run_baseline(
        go_trace, ProcessorConfig(8, 48, perfect_branches=True)
    )
    assert result.counters.branch_mispredictions == 0
    assert result.counters.dispatched_wrong_path == 0


def test_perfect_caches_always_hit(go_trace):
    hierarchy = make_paper_hierarchy(perfect=True)
    assert isinstance(hierarchy.l1d, PerfectCache)
    assert hierarchy.data_access(0xDEAD000, is_write=False) == 2
    assert hierarchy.l1d.stats.misses == 0


def test_idealization_speeds_up(go_trace):
    config = ProcessorConfig(8, 48)
    normal = run_baseline(go_trace, config)
    ideal = run_baseline(
        go_trace,
        config.with_overrides(perfect_branches=True, perfect_caches=True),
    )
    assert ideal.cycles < normal.cycles


def test_engine_respects_the_dataflow_limit(go_trace):
    """The idealized pipeline (perfect frontend + caches) must never beat
    the window/width-constrained dataflow limit for the same geometry —
    the analytic model and the cycle-level engine agree on the bound."""
    for window, width in ((24, 4), (48, 8)):
        ideal = run_baseline(
            go_trace,
            ProcessorConfig(
                width, window, perfect_branches=True, perfect_caches=True
            ),
        )
        bound = limit_study(go_trace, geometries=((window, width),))[0]
        assert ideal.cycles >= bound.cycles, (window, width)
        # and it should be within a small constant factor of the bound
        assert ideal.cycles <= bound.cycles * 1.6 + 50, (window, width)


def test_perfect_flags_default_off():
    config = ProcessorConfig(4, 24)
    assert not config.perfect_branches
    assert not config.perfect_caches
