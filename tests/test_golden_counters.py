"""Bit-for-bit golden SimCounters regression.

``tests/golden/*.json`` holds complete counter dumps produced by the seed
engine (see ``scripts/gen_golden_counters.py``) for every micro kernel and
one truncated trace per SPEC benchmark.  The engine is deterministic, so
any divergence in any counter — cycles, retired, squashes, VP hit/miss,
stall breakdowns — means a timing *model* change, not a speed change.
Performance work must keep this suite green; intentional model changes
must regenerate the snapshots and say so in the commit message.
"""

import json
from dataclasses import fields
from pathlib import Path

import pytest

from repro.asm import assemble
from repro.core.model import GREAT_MODEL
from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_baseline, run_trace
from repro.func import Machine
from repro.programs.micro import micro_kernel
from repro.programs.suite import benchmark_suite
from repro.trace.capture import capture_trace

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SNAPSHOTS = sorted(GOLDEN_DIR.glob("*.json"))

# The generator truncates traces at these limits; the resulting length is
# recorded in each snapshot and asserted below, so a limit drift shows up
# as a trace-length mismatch rather than a silent counter diff.
MICRO_TRACE_LIMIT = 3000
SPEC_TRACE_LIMIT = 2000


def counters_dict(counters) -> dict:
    return {
        f.name: getattr(counters, f.name)
        for f in fields(counters)
        if f.name != "extra"
    }


def _load_trace(label: str):
    kind, name = label.split("_", 1)
    if kind == "micro":
        machine = Machine(assemble(micro_kernel(name)))
        return capture_trace(machine, MICRO_TRACE_LIMIT)
    for spec in benchmark_suite():
        if spec.name == name:
            return spec.trace(SPEC_TRACE_LIMIT)
    raise KeyError(label)


@pytest.mark.parametrize(
    "path", SNAPSHOTS, ids=[p.stem for p in SNAPSHOTS]
)
def test_counters_match_golden(path):
    assert SNAPSHOTS, "tests/golden/ is empty — run scripts/gen_golden_counters.py"
    snapshot = json.loads(path.read_text())
    trace = _load_trace(snapshot["workload"])
    assert len(trace) == snapshot["trace_length"]
    config = ProcessorConfig(
        issue_width=snapshot["config"]["issue_width"],
        window_size=snapshot["config"]["window_size"],
    )

    base = run_baseline(trace, config)
    assert counters_dict(base.counters) == snapshot["base"]

    vp = run_trace(
        trace, config, GREAT_MODEL, confidence="R", update_timing="D"
    )
    assert counters_dict(vp.counters) == snapshot["vp"]
