"""Dependence-closure and wave-planning tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.invalidation import invalidation_waves
from repro.core.variables import InvalidationScheme
from repro.core.verification import closure, successor_levels


def _graph_successors(edges):
    adjacency: dict[int, list[int]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
    return lambda node: adjacency.get(node, [])


def test_closure_simple_chain():
    successors = _graph_successors([(1, 2), (2, 3), (3, 4)])
    assert closure(1, successors) == {2, 3, 4}
    assert closure(3, successors) == {4}
    assert closure(4, successors) == set()


def test_closure_diamond():
    successors = _graph_successors([(1, 2), (1, 3), (2, 4), (3, 4)])
    assert closure(1, successors) == {2, 3, 4}


def test_closure_excludes_root_on_cycle():
    successors = _graph_successors([(1, 2), (2, 1)])
    assert closure(1, successors) == {2}


def test_successor_levels_chain():
    successors = _graph_successors([(1, 2), (2, 3), (3, 4)])
    assert successor_levels(1, successors) == [{2}, {3}, {4}]


def test_successor_levels_minimum_distance():
    # node 4 reachable at distance 1 (direct) and 2; it belongs to level 0
    successors = _graph_successors([(1, 2), (1, 4), (2, 4), (2, 3)])
    assert successor_levels(1, successors) == [{2, 4}, {3}]


def test_successor_levels_empty():
    assert successor_levels(1, _graph_successors([])) == []


def test_invalidation_waves_parallel_is_one_wave():
    successors = _graph_successors([(1, 2), (2, 3)])
    waves = invalidation_waves(InvalidationScheme.SELECTIVE_PARALLEL, 1, successors)
    assert waves == [{2, 3}]


def test_invalidation_waves_hierarchical_is_levels():
    successors = _graph_successors([(1, 2), (2, 3)])
    waves = invalidation_waves(
        InvalidationScheme.SELECTIVE_HIERARCHICAL, 1, successors
    )
    assert waves == [{2}, {3}]


def test_invalidation_waves_complete_rejected():
    with pytest.raises(ValueError, match="squash"):
        invalidation_waves(InvalidationScheme.COMPLETE, 1, lambda n: [])


def test_no_successors_no_waves():
    assert (
        invalidation_waves(
            InvalidationScheme.SELECTIVE_PARALLEL, 1, _graph_successors([])
        )
        == []
    )


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40
    )
)
def test_levels_partition_the_closure(edges):
    successors = _graph_successors(edges)
    full = closure(0, successors)
    levels = successor_levels(0, successors)
    flattened = set().union(*levels) if levels else set()
    assert flattened == full
    # levels are disjoint
    seen: set[int] = set()
    for level in levels:
        assert not (level & seen)
        seen |= level
