"""CLI tests."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure3" in out and "table1" in out


def test_describe(capsys):
    assert main(["describe", "super"]) == 0
    out = capsys.readouterr().out
    assert "Invalidation - Reissue" in out


def test_describe_unknown(capsys):
    assert main(["describe", "amazing"]) == 2
    assert "unknown model" in capsys.readouterr().err


def test_run_unknown_experiment(capsys):
    assert main(["run", "figure9"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_table1(capsys):
    assert main(["run", "table1", "--max-instructions", "1500"]) == 0
    out = capsys.readouterr().out
    assert "Benchmark Characteristics" in out
    assert "xlisp" in out


def test_run_figure1(capsys):
    assert main(["run", "figure1"]) == 0
    out = capsys.readouterr().out
    assert "base" in out and "good/incorrect" in out


def test_bench_with_model(capsys):
    code = main(
        [
            "bench", "compress",
            "--max-instructions", "1500",
            "--model", "great",
            "--timing", "I",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup over base" in out
    assert "value predictions" in out


def test_bench_base_only(capsys):
    assert main(
        ["bench", "perl", "--max-instructions", "1000", "--model", "none"]
    ) == 0
    out = capsys.readouterr().out
    assert "base" in out and "speedup" not in out


def test_run_limit_study(capsys):
    code = main(
        ["run", "limit-study", "--max-instructions", "600",
         "--benchmarks", "perl"]
    )
    assert code == 0
    assert "VP bound" in capsys.readouterr().out


def test_run_abl_equality(capsys):
    code = main(
        ["run", "abl-equality", "--max-instructions", "800",
         "--benchmarks", "compress"]
    )
    assert code == 0
    assert "strict (paper)" in capsys.readouterr().out


def test_every_registered_experiment_is_listed(capsys):
    from repro.harness.experiments import EXPERIMENTS

    main(["list"])
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_figure4_shorthand(capsys):
    code = main(
        [
            "figure4",
            "--max-instructions", "800",
            "--benchmarks", "compress",
        ]
    )
    assert code == 0
    assert "CH %" in capsys.readouterr().out


def test_ablate(capsys, tmp_path):
    json_path = tmp_path / "report.json"
    csv_path = tmp_path / "report.csv"
    assert main([
        "ablate", "--max-instructions", "600", "--limit", "2",
        "--json", str(json_path), "--csv", str(csv_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "ablation report v1" in out
    assert "baseline speedup" in out
    assert "importance" in out
    assert "dropped by --limit" in out
    assert json_path.exists() and csv_path.exists()

    import json as json_module

    report = json_module.loads(json_path.read_text())
    assert report["kind"] == "ablation"
    assert len(report["components"]) == 2
    assert csv_path.read_text().startswith("rank,run_id,label")


def test_ablate_pairs_grow_the_run_set(capsys):
    assert main([
        "ablate", "--max-instructions", "600", "--limit", "0", "--pairs",
    ]) == 0
    out = capsys.readouterr().out
    # limit 0 drops every lesioned run but the counter proves the pairs
    # were planned.
    assert "dropped by --limit" in out
