"""Metrics tests: means, speedup, accuracy breakdown, summaries."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.accuracy import AccuracyBreakdown, average_breakdown
from repro.metrics.counters import SimCounters
from repro.metrics.speedup import arithmetic_mean, harmonic_mean, speedup
from repro.metrics.summary import summarize_counters


def test_speedup():
    assert speedup(200, 100) == 2.0
    assert speedup(100, 200) == 0.5
    with pytest.raises(ValueError):
        speedup(0, 10)
    with pytest.raises(ValueError):
        speedup(10, 0)


def test_harmonic_mean_known_values():
    assert harmonic_mean([1.0, 1.0]) == 1.0
    assert harmonic_mean([2.0, 2.0]) == 2.0
    assert abs(harmonic_mean([1.0, 2.0]) - 4.0 / 3.0) < 1e-12


def test_harmonic_mean_validation():
    with pytest.raises(ValueError):
        harmonic_mean([])
    with pytest.raises(ValueError):
        harmonic_mean([1.0, 0.0])


@given(values=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=10))
def test_harmonic_leq_arithmetic(values):
    assert harmonic_mean(values) <= arithmetic_mean(values) + 1e-12


def test_arithmetic_mean():
    assert arithmetic_mean([1, 2, 3]) == 2
    with pytest.raises(ValueError):
        arithmetic_mean([])


def test_counters_derived_metrics():
    counters = SimCounters(
        cycles=100,
        retired=250,
        predictions=100,
        predictions_correct=70,
        speculated=50,
        misspeculations=5,
        branches=40,
        branch_mispredictions=4,
        window_occupancy_sum=1600,
    )
    assert counters.ipc == 2.5
    assert counters.prediction_accuracy == 0.7
    assert counters.misspeculation_rate == 0.1
    assert counters.branch_misprediction_rate == 0.1
    assert counters.mean_window_occupancy == 16.0


def test_counters_zero_safe():
    counters = SimCounters()
    assert counters.ipc == 0.0
    assert counters.prediction_accuracy == 0.0
    assert counters.misspeculation_rate == 0.0
    assert counters.branch_misprediction_rate == 0.0
    assert counters.mean_window_occupancy == 0.0


def test_accuracy_breakdown_from_counters():
    counters = SimCounters(
        correct_high=50, correct_low=25, incorrect_high=5, incorrect_low=20
    )
    breakdown = AccuracyBreakdown.from_counters(counters)
    assert breakdown.ch == 0.5
    assert breakdown.correct == 0.75
    assert abs(sum(breakdown.as_dict().values()) - 1.0) < 1e-12


def test_accuracy_breakdown_empty():
    assert AccuracyBreakdown.from_counters(SimCounters()).correct == 0.0


def test_average_breakdown():
    a = AccuracyBreakdown(0.5, 0.3, 0.0, 0.2)
    b = AccuracyBreakdown(0.7, 0.1, 0.1, 0.1)
    avg = average_breakdown([a, b])
    assert abs(avg.ch - 0.6) < 1e-12
    assert abs(avg.ih - 0.05) < 1e-12
    with pytest.raises(ValueError):
        average_breakdown([])


def test_summary_renders():
    counters = SimCounters(cycles=10, retired=20, predictions=5, speculated=3)
    text = summarize_counters(counters, "label")
    assert "label" in text
    assert "IPC" in text
    assert "value predictions" in text
    # no predictions: the VP section is omitted
    plain = summarize_counters(SimCounters(cycles=10, retired=20))
    assert "value predictions" not in plain
