"""Metrics tests: means, speedup, accuracy breakdown, summaries."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.accuracy import AccuracyBreakdown, average_breakdown
from repro.metrics.counters import SimCounters
from repro.metrics.speedup import arithmetic_mean, harmonic_mean, speedup
from repro.metrics.summary import summarize_counters


def test_speedup():
    assert speedup(200, 100) == 2.0
    assert speedup(100, 200) == 0.5
    with pytest.raises(ValueError):
        speedup(0, 10)
    with pytest.raises(ValueError):
        speedup(10, 0)


def test_harmonic_mean_known_values():
    assert harmonic_mean([1.0, 1.0]) == 1.0
    assert harmonic_mean([2.0, 2.0]) == 2.0
    assert abs(harmonic_mean([1.0, 2.0]) - 4.0 / 3.0) < 1e-12


def test_harmonic_mean_validation():
    with pytest.raises(ValueError):
        harmonic_mean([])
    with pytest.raises(ValueError):
        harmonic_mean([1.0, 0.0])


@given(values=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=10))
def test_harmonic_leq_arithmetic(values):
    assert harmonic_mean(values) <= arithmetic_mean(values) + 1e-12


def test_arithmetic_mean():
    assert arithmetic_mean([1, 2, 3]) == 2
    with pytest.raises(ValueError):
        arithmetic_mean([])


def test_counters_derived_metrics():
    counters = SimCounters(
        cycles=100,
        retired=250,
        predictions=100,
        predictions_correct=70,
        speculated=50,
        misspeculations=5,
        branches=40,
        branch_mispredictions=4,
        window_occupancy_sum=1600,
    )
    assert counters.ipc == 2.5
    assert counters.prediction_accuracy == 0.7
    assert counters.misspeculation_rate == 0.1
    assert counters.branch_misprediction_rate == 0.1
    assert counters.mean_window_occupancy == 16.0


def test_counters_zero_safe():
    counters = SimCounters()
    assert counters.ipc == 0.0
    assert counters.prediction_accuracy == 0.0
    assert counters.misspeculation_rate == 0.0
    assert counters.branch_misprediction_rate == 0.0
    assert counters.mean_window_occupancy == 0.0


def test_accuracy_breakdown_from_counters():
    counters = SimCounters(
        correct_high=50, correct_low=25, incorrect_high=5, incorrect_low=20
    )
    breakdown = AccuracyBreakdown.from_counters(counters)
    assert breakdown.ch == 0.5
    assert breakdown.correct == 0.75
    assert abs(sum(breakdown.as_dict().values()) - 1.0) < 1e-12


def test_accuracy_breakdown_empty():
    assert AccuracyBreakdown.from_counters(SimCounters()).correct == 0.0


def test_average_breakdown():
    a = AccuracyBreakdown(0.5, 0.3, 0.0, 0.2)
    b = AccuracyBreakdown(0.7, 0.1, 0.1, 0.1)
    avg = average_breakdown([a, b])
    assert abs(avg.ch - 0.6) < 1e-12
    assert abs(avg.ih - 0.05) < 1e-12
    with pytest.raises(ValueError):
        average_breakdown([])


def test_summary_renders():
    counters = SimCounters(cycles=10, retired=20, predictions=5, speculated=3)
    text = summarize_counters(counters, "label")
    assert "label" in text
    assert "IPC" in text
    assert "value predictions" in text
    # no predictions: the VP section is omitted
    plain = summarize_counters(SimCounters(cycles=10, retired=20))
    assert "value predictions" not in plain


# -- aggregation: merge / merged / CounterBatch ---------------------------


def test_merge_sums_counts_and_maxes_peak():
    from repro.metrics.counters import CounterBatch  # noqa: F401  (import check)

    a = SimCounters(cycles=10, retired=20, speculated=4, misspeculations=1,
                    window_peak=7, extra={"x": 1.0})
    b = SimCounters(cycles=5, retired=10, speculated=6, misspeculations=2,
                    window_peak=3, extra={"x": 2.0, "y": 0.5})
    out = a.merge(b)
    assert out is a
    assert a.cycles == 15 and a.retired == 30
    assert a.speculated == 10 and a.misspeculations == 3
    assert a.window_peak == 7  # max, not sum
    assert a.extra == {"x": 3.0, "y": 0.5}
    # derived rates answer for the combined population
    assert a.misspeculation_rate == pytest.approx(3 / 10)


def test_merged_combines_parallel_jobs():
    chunks = [SimCounters(cycles=c, retired=2 * c, window_peak=c)
              for c in (3, 9, 6)]
    combined = SimCounters.merged(chunks)
    assert combined.cycles == 18
    assert combined.retired == 36
    assert combined.window_peak == 9
    # inputs are untouched
    assert [c.cycles for c in chunks] == [3, 9, 6]
    assert SimCounters.merged([]).cycles == 0


def test_counter_batch_zero_length_phase_flush():
    from repro.metrics.counters import CounterBatch

    batch = CounterBatch()
    assert batch.flush() == 0  # flushing an empty phase is a no-op
    assert batch.flushes == 0
    assert batch.total.cycles == 0


def test_counter_batch_double_flush_idempotent():
    from repro.metrics.counters import CounterBatch

    batch = CounterBatch()
    batch.add(SimCounters(cycles=4, retired=8))
    batch.add(SimCounters(cycles=6, retired=2))
    assert batch.pending == 2
    assert batch.flush() == 2
    snapshot = (batch.total.cycles, batch.total.retired)
    assert batch.flush() == 0  # second flush folds nothing
    assert (batch.total.cycles, batch.total.retired) == snapshot == (10, 10)
    assert batch.flushes == 1


def test_counter_batch_merges_across_parallel_jobs():
    """Folding per-job counters phase by phase equals one big merge."""
    from repro.metrics.counters import CounterBatch

    jobs = [SimCounters(cycles=i, retired=i * 2, speculated=i,
                        misspeculations=i // 2, window_peak=i,
                        extra={"warm": float(i)})
            for i in (1, 2, 3, 4, 5)]
    batch = CounterBatch()
    for wave in (jobs[:2], jobs[2:]):  # two phases of parallel jobs
        for counters in wave:
            batch.add(counters)
        batch.flush()
    direct = SimCounters.merged(
        SimCounters(cycles=i, retired=i * 2, speculated=i,
                    misspeculations=i // 2, window_peak=i,
                    extra={"warm": float(i)})
        for i in (1, 2, 3, 4, 5)
    )
    assert batch.flushes == 2
    assert batch.total == direct
