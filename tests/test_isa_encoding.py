"""Encoding round-trip tests, including property-based coverage."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrFormat, OpClass, Opcode

_IMM_MAX = (1 << 37) - 1
_IMM_MIN = -(1 << 37)


def _build(opcode: Opcode, rd: int, rs: int, rt: int, imm: int) -> Instruction:
    """Build a format-appropriate instruction from raw field draws."""
    fmt = opcode.format
    kwargs: dict = {"imm": imm}
    if fmt is InstrFormat.R:
        kwargs.update(rd=rd, rs=rs, rt=rt, imm=0)
    elif fmt is InstrFormat.I:
        kwargs.update(rd=rd, rs=rs)
    elif fmt is InstrFormat.LI:
        kwargs.update(rd=rd)
    elif fmt is InstrFormat.MEM:
        if opcode.opclass is OpClass.STORE:
            kwargs.update(rs=rs, rt=rt)
        else:
            kwargs.update(rd=rd, rs=rs)
    elif fmt is InstrFormat.B:
        kwargs.update(rs=rs, rt=rt)
    elif fmt is InstrFormat.BZ:
        kwargs.update(rs=rs)
    elif fmt is InstrFormat.J:
        pass
    elif fmt is InstrFormat.JL:
        kwargs.update(rd=rd)
    elif fmt is InstrFormat.JR:
        kwargs.update(rs=rs, imm=0)
    elif fmt is InstrFormat.JLR:
        kwargs.update(rd=rd, rs=rs, imm=0)
    else:
        kwargs["imm"] = 0
    return Instruction(opcode, **kwargs)


@given(
    opcode=st.sampled_from(list(Opcode)),
    rd=st.integers(0, 31),
    rs=st.integers(0, 31),
    rt=st.integers(0, 31),
    imm=st.integers(_IMM_MIN, _IMM_MAX),
)
def test_encode_decode_round_trip(opcode, rd, rs, rt, imm):
    instr = _build(opcode, rd, rs, rt, imm)
    word = encode(instr)
    assert 0 <= word < (1 << 64)
    decoded = decode(word)
    assert decoded.opcode is instr.opcode
    assert decoded.rd == instr.rd
    assert decoded.rs == instr.rs
    assert decoded.rt == instr.rt
    assert decoded.imm == instr.imm


def test_encode_rejects_wide_immediate():
    with pytest.raises(EncodingError):
        encode(Instruction(Opcode.LI, rd=1, imm=1 << 40))
    with pytest.raises(EncodingError):
        encode(Instruction(Opcode.LI, rd=1, imm=-(1 << 40)))


def test_decode_rejects_bad_words():
    with pytest.raises(EncodingError):
        decode(-1)
    with pytest.raises(EncodingError):
        decode(1 << 64)
    with pytest.raises(EncodingError):
        decode(0xFF)  # opcode byte beyond the last defined opcode


def test_negative_immediate_round_trip():
    instr = Instruction(Opcode.ADDI, rd=1, rs=2, imm=-1)
    assert decode(encode(instr)).imm == -1
