"""CSV export tests."""

import csv
import io

import pytest

from repro.harness.export import EXPORTS, export_csv


def _parse(text):
    return list(csv.reader(io.StringIO(text)))


def test_table1_export():
    text = export_csv("table1", max_instructions=1500)
    rows = _parse(text)
    assert rows[0][0] == "benchmark"
    assert len(rows) == 9  # header + 8 benchmarks
    assert rows[1][0] == "compress"


def test_sweep_export_long_format():
    text = export_csv(
        "abl-verify", max_instructions=1000, benchmarks=["perl"]
    )
    rows = _parse(text)
    assert rows[0] == ["point", "benchmark", "speedup"]
    points = {row[0] for row in rows[1:]}
    assert "parallel-network" in points
    hmeans = [row for row in rows[1:] if row[1] == "HMEAN"]
    assert len(hmeans) == 4  # one per scheme


def test_figure4_export():
    from repro.engine.config import ProcessorConfig

    text = export_csv(
        "figure4",
        max_instructions=1000,
        benchmarks=["perl"],
        configs=(ProcessorConfig(4, 24),),
    )
    rows = _parse(text)
    assert rows[0] == ["config", "timing", "CH", "CL", "IH", "IL", "correct"]
    assert len(rows) == 3  # header + D + I


def test_export_to_file(tmp_path):
    path = tmp_path / "out.csv"
    text = export_csv(
        "abl-inval", path, max_instructions=1000, benchmarks=["perl"]
    )
    assert path.read_text() == text


def test_unknown_export_rejected():
    with pytest.raises(KeyError):
        export_csv("figure9")


def test_every_registered_export_is_callable():
    assert len(EXPORTS) >= 15
    for key, (runner, formatter) in EXPORTS.items():
        assert callable(runner) and callable(formatter), key


def test_cli_export(capsys):
    from repro.cli import main

    code = main(
        ["export", "abl-inval", "--max-instructions", "1000",
         "--benchmarks", "perl"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("point,benchmark,speedup")


def test_cli_export_unknown(capsys):
    from repro.cli import main

    assert main(["export", "nope"]) == 2
