"""Batched multi-config engine: bit-identity and planner behaviour.

The batched engine (``repro.engine.batched``) shares the predicted
fetch stream — and, for immediate-timing lanes, recorded
value-prediction columns — across every configuration in a batch.  The
contract is *bit-identity*: a batched lane must produce exactly the
SimCounters of the scalar engine.  This suite pins that contract
against every golden snapshot and variant golden, across batch sizes
{1, 2, full-grid} and the serial / process-pool / cluster backends,
and checks the planner's scalar fallback for batch-incompatible jobs.
"""

import dataclasses
import json
from dataclasses import asdict, fields
from pathlib import Path

import pytest

from repro.asm import assemble
from repro.core.model import GREAT_MODEL
from repro.core.variables import InvalidationScheme
from repro.engine.batched import (
    StreamFetchEngine,
    batch_compatible,
    run_batch,
)
from repro.engine.config import ProcessorConfig
from repro.func import Machine
from repro.harness.parallel import (
    BatchJob,
    SimJob,
    plan_units,
    resolve_batch,
    run_jobs,
)
from repro.programs.micro import micro_kernel
from repro.programs.suite import benchmark_suite
from repro.trace.capture import capture_trace
from repro.vp.confidence import SaturatingConfidenceEstimator
from repro.vp.hybrid import HybridPredictor
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import StridePredictor
from repro.vp.tagged import TaggedContextPredictor

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SNAPSHOTS = sorted(GOLDEN_DIR.glob("*.json"))
VARIANT_SNAPSHOTS = sorted((GOLDEN_DIR / "variants").glob("*.json"))

MICRO_TRACE_LIMIT = 3000
SPEC_TRACE_LIMIT = 2000

_CONFIDENCE = {
    "R": "R",
    "SaturatingConfidenceEstimator": SaturatingConfidenceEstimator,
}
_PREDICTOR = {
    "context": None,
    "LastValuePredictor": LastValuePredictor,
    "StridePredictor": StridePredictor,
    "HybridPredictor": HybridPredictor,
    "TaggedContextPredictor": TaggedContextPredictor,
}


def counters_dict(counters) -> dict:
    return {
        f.name: getattr(counters, f.name)
        for f in fields(counters)
        if f.name != "extra"
    }


def _result_key(result):
    d = asdict(result.counters)
    d.pop("extra", None)
    return (
        d,
        result.model_name,
        result.confidence_kind,
        result.update_timing,
    )


def _load_trace(label: str):
    kind, name = label.split("_", 1)
    if kind == "micro":
        machine = Machine(assemble(micro_kernel(name)))
        return capture_trace(machine, MICRO_TRACE_LIMIT)
    for spec in benchmark_suite():
        if spec.name == name:
            return spec.trace(SPEC_TRACE_LIMIT)
    raise KeyError(label)


def _snapshot_config(snapshot) -> ProcessorConfig:
    return ProcessorConfig(
        issue_width=snapshot["config"]["issue_width"],
        window_size=snapshot["config"]["window_size"],
    )


@pytest.mark.parametrize("path", SNAPSHOTS, ids=[p.stem for p in SNAPSHOTS])
def test_batched_matches_golden(path):
    """A two-lane batch (baseline + great D/R) reproduces every main
    golden snapshot bit-for-bit through the shared fetch stream."""
    snapshot = json.loads(path.read_text())
    trace = _load_trace(snapshot["workload"])
    config = _snapshot_config(snapshot)
    workload = snapshot["workload"]
    jobs = [
        SimJob(workload, config, None, None),
        SimJob(
            workload, config, GREAT_MODEL, None,
            confidence="R", update_timing="D",
        ),
    ]
    base, vp = run_batch(jobs, trace)
    assert counters_dict(base.counters) == snapshot["base"]
    assert counters_dict(vp.counters) == snapshot["vp"]


@pytest.mark.parametrize(
    "path", VARIANT_SNAPSHOTS, ids=[p.stem for p in VARIANT_SNAPSHOTS]
)
def test_batched_matches_variant_golden(path):
    """Batched lanes reproduce the variant goldens — immediate update
    timing (replayed value-prediction columns), saturating confidence,
    and every alternative predictor implementation."""
    snapshot = json.loads(path.read_text())
    trace = _load_trace(snapshot["workload"])
    job = SimJob(
        snapshot["workload"],
        _snapshot_config(snapshot),
        GREAT_MODEL,
        None,
        confidence=_CONFIDENCE[snapshot["confidence"]],
        update_timing=snapshot["update_timing"],
        predictor=_PREDICTOR[snapshot["predictor"]],
    )
    (result,) = run_batch([job], trace)
    assert counters_dict(result.counters) == snapshot["vp"]


def _small_grid():
    config = ProcessorConfig()
    narrow = ProcessorConfig(issue_width=4, window_size=24)
    jobs = []
    for name in ("compress", "m88ksim"):
        for cfg in (config, narrow):
            jobs.append(SimJob(name, cfg, None, 800))
            for timing, conf in (("D", "R"), ("I", "R"), ("I", "O")):
                jobs.append(
                    SimJob(
                        name, cfg, GREAT_MODEL, 800,
                        confidence=conf, update_timing=timing,
                    )
                )
    return jobs


@pytest.fixture(scope="module")
def small_grid_reference():
    jobs = _small_grid()
    return jobs, [_result_key(r) for r in run_jobs(jobs, 1, batch=1)]


@pytest.mark.parametrize("batch", [1, 2, 0], ids=["b1", "b2", "bfull"])
def test_batch_sizes_serial(small_grid_reference, batch):
    jobs, reference = small_grid_reference
    results = run_jobs(jobs, 1, batch=batch)
    assert [_result_key(r) for r in results] == reference


def test_batched_pool_backend(small_grid_reference):
    jobs, reference = small_grid_reference
    results = run_jobs(jobs, 4, batch=2)
    assert [_result_key(r) for r in results] == reference


def test_batched_cluster_backend(small_grid_reference):
    jobs, reference = small_grid_reference
    results = run_jobs(jobs, 2, backend="cluster", batch=0)
    assert [_result_key(r) for r in results] == reference


def _complete_invalidation_model():
    variables = dataclasses.replace(
        GREAT_MODEL.variables, invalidation=InvalidationScheme.COMPLETE
    )
    return dataclasses.replace(
        GREAT_MODEL, name="great-complete", variables=variables
    )


def test_planner_mixed_compatibility_fallback(caplog):
    """A grid mixing batchable jobs, a batch-incompatible model
    (complete invalidation rewinds the shared fetch stream) and
    different traces plans into batches plus logged scalar units — and
    still merges bit-identically."""
    config = ProcessorConfig()
    complete = _complete_invalidation_model()
    jobs = [
        SimJob("compress", config, None, 800),
        SimJob("compress", config, GREAT_MODEL, 800, "R", "D"),
        SimJob("compress", config, complete, 800, "R", "D"),
        SimJob("compress", config, GREAT_MODEL, 800, "R", "I"),
        # A different trace limit: same benchmark, different batch group.
        SimJob("compress", config, GREAT_MODEL, 600, "R", "D"),
        SimJob("m88ksim", config, GREAT_MODEL, 800, "R", "I"),
    ]
    ok, reason = batch_compatible(jobs[2])
    assert not ok and "invalidation" in reason

    with caplog.at_level("INFO", logger="repro.harness.parallel"):
        units, slots = plan_units(jobs, 0)
    assert any("runs scalar" in record.message for record in caplog.records)

    batched = [u for u in units if isinstance(u, BatchJob)]
    scalar = [u for u in units if isinstance(u, SimJob)]
    # compress@800 batches its three compatible lanes; the complete-
    # invalidation job and both singleton groups stay scalar.
    assert len(batched) == 1 and len(batched[0].jobs) == 3
    assert len(scalar) == 3
    assert sorted(i for chunk in slots for i in chunk) == list(range(len(jobs)))

    reference = [_result_key(r) for r in run_jobs(jobs, 1, batch=1)]
    results = run_jobs(jobs, 1, batch=0)
    assert [_result_key(r) for r in results] == reference


def test_resolve_batch_env(monkeypatch):
    from repro.harness.parallel import BATCH_ENV_VAR

    assert resolve_batch(None) == 1
    assert resolve_batch(4) == 4
    monkeypatch.setenv(BATCH_ENV_VAR, "8")
    assert resolve_batch(None) == 8
    assert resolve_batch(2) == 2
    monkeypatch.setenv(BATCH_ENV_VAR, "nope")
    with pytest.raises(ValueError):
        resolve_batch(None)
    with pytest.raises(ValueError):
        resolve_batch(-1)


def test_resolve_batch_env_invalid_spellings_name_the_var(monkeypatch):
    """Bad ``REPRO_SWEEP_BATCH`` spellings must fail at entry with a
    message that names the env var and the accepted values — not a bare
    ``ValueError`` from deep inside the planner."""
    from repro.harness.parallel import BATCH_ENV_VAR

    monkeypatch.setenv(BATCH_ENV_VAR, "full")
    with pytest.raises(ValueError, match=r"REPRO_SWEEP_BATCH='full'.*unbounded"):
        resolve_batch(None)

    monkeypatch.setenv(BATCH_ENV_VAR, "-1")
    with pytest.raises(ValueError, match=r"REPRO_SWEEP_BATCH='-1'.*>= 0"):
        resolve_batch(None)

    # An explicit argument bypasses the env var entirely.
    assert resolve_batch(3) == 3


def test_stream_fetch_engine_refuses_rewind():
    """Complete invalidation needs ``rewind_to``; the replay front end
    must fail loudly if the planner gate were ever bypassed."""
    trace = _load_trace("spec_compress")
    rows = trace.rows() if hasattr(trace, "rows") else trace
    engine = StreamFetchEngine(rows, bytearray(len(rows)), None)
    with pytest.raises(RuntimeError, match="scalar path"):
        engine.rewind_to(0, 0)


def test_tracer_runs_stay_scalar_and_consistent():
    """The obs tracer contract under batching: instrumented re-runs use
    the scalar engine (run_trace directly — the sweeps' instrument path
    never goes through the planner), and the batched engine reproduces
    the same counters for the identical uninstrumented job."""
    from repro.engine.sim import run_trace
    from repro.obs import PipelineTracer

    trace = _load_trace("spec_compress")
    config = ProcessorConfig()
    tracer = PipelineTracer()
    traced = run_trace(
        trace, config, GREAT_MODEL,
        confidence="R", update_timing="I", tracer=tracer,
    )
    assert tracer.config_label == config.label  # the tracer really ran
    assert tracer.lifecycle_marks()
    job = SimJob("compress", config, GREAT_MODEL, None, "R", "I")
    (batched,) = run_batch([job], trace)
    assert counters_dict(batched.counters) == counters_dict(traced.counters)
