"""The ablation framework: registry, planner, executor, reporter.

The tentpole invariants: run IDs are stable content hashes (same spec →
same IDs across processes and registry orderings), inapplicable lesions
become skipped-with-reason entries rather than crashes, engine-feature
lesions land at exactly 0.0 importance (they run identical jobs), and
the report document validates, ranks, and renders in all three shapes.
"""

import json
import subprocess
import sys
from functools import partial
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ablation import (
    AblationPlan,
    AblationPoint,
    AblationSpec,
    Component,
    ComponentRegistry,
    NotApplicable,
    build_report,
    default_registry,
    execute_plan,
    plan_ablation,
    render_csv,
    render_text,
    report_record,
    validate_report,
    verify_engine_identity,
    write_report,
)
from repro.core.model import GREAT_MODEL, SpeculativeExecutionModel
from repro.core.variables import (
    InvalidationScheme,
    ModelVariables,
    VerificationScheme,
    WakeupPolicy,
)
from repro.engine.config import ProcessorConfig, paper_config
from repro.vp.confidence import AlwaysConfidentEstimator

_CONFIG = ProcessorConfig(issue_width=4, window_size=24)
_LIMIT = 600


def _point(**overrides) -> AblationPoint:
    defaults = dict(config=_CONFIG, model=GREAT_MODEL)
    defaults.update(overrides)
    return AblationPoint(**defaults)


def _spec(**overrides) -> AblationSpec:
    defaults = dict(
        benchmarks=("micro:fib",), point=_point(), max_instructions=_LIMIT
    )
    defaults.update(overrides)
    return AblationSpec(**defaults)


class TestRegistry:
    def test_default_registry_has_the_advertised_components(self):
        registry = default_registry()
        assert len(registry) >= 6
        names = registry.names()
        for expected in (
            "verification-network",
            "selective-invalidation",
            "confidence-gating",
            "delayed-update",
            "predictor-depth",
            "selective-reissue",
        ):
            assert expected in names

    def test_iteration_is_sorted_regardless_of_registration_order(self):
        components = default_registry().components()
        reordered = ComponentRegistry(list(reversed(components)))
        assert [c.name for c in reordered] == [
            c.name for c in default_registry()
        ]

    def test_duplicate_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError, match="already registered"):
            registry.register(registry.components()[0])

    def test_unknown_component_lookup(self):
        with pytest.raises(KeyError, match="unknown component"):
            default_registry().get("flux-capacitor")

    def test_model_component_requires_lesion(self):
        with pytest.raises(ValueError, match="needs a lesion"):
            Component(name="x", title="x", description="x", lesion_label="x")

    def test_engine_component_requires_overrides(self):
        with pytest.raises(ValueError, match="needs engine_overrides"):
            Component(
                name="x", title="x", description="x", lesion_label="x",
                kind="engine",
            )

    def test_every_model_lesion_changes_the_job_fingerprint(self):
        from repro.cluster.serial import job_key

        point = _point()
        baseline_key = job_key(point.job("micro:fib", _LIMIT))
        for component in default_registry():
            if component.kind != "model":
                continue
            lesioned = component.apply(point)
            assert (
                job_key(lesioned.job("micro:fib", _LIMIT)) != baseline_key
            ), component.name

    def test_lesions_not_applicable_report_a_reason(self):
        already_complete = _point().with_variables(
            invalidation=InvalidationScheme.COMPLETE
        )
        with pytest.raises(NotApplicable, match="already squashes completely"):
            default_registry().get("selective-invalidation").apply(
                already_complete
            )
        with pytest.raises(NotApplicable, match="immediately"):
            default_registry().get("delayed-update").apply(
                _point(update_timing="I")
            )
        with pytest.raises(NotApplicable, match="unconditionally"):
            default_registry().get("confidence-gating").apply(
                _point(confidence=AlwaysConfidentEstimator)
            )


class TestPlanner:
    def test_baseline_first_then_sorted_leave_one_out(self):
        plan = plan_ablation(_spec())
        assert plan.runs[0].is_baseline
        assert plan.runs[0].label == "baseline"
        lesioned = [run.components for run in plan.lesioned]
        assert lesioned == sorted(lesioned)
        assert all(len(components) == 1 for components in lesioned)

    def test_pairs_appends_two_component_runs(self):
        single = plan_ablation(_spec())
        paired = plan_ablation(_spec(), pairs=True)
        assert len(paired.runs) > len(single.runs)
        assert any(len(run.components) == 2 for run in paired.lesioned)
        # Single-lesion runs keep their IDs when pairs are added.
        singles = {run.components: run.run_id for run in single.lesioned}
        for run in paired.lesioned:
            if len(run.components) == 1:
                assert singles[run.components] == run.run_id

    def test_limit_counts_dropped_runs_instead_of_silently_truncating(self):
        plan = plan_ablation(_spec(), limit=2)
        assert len(plan.lesioned) == 2
        full = plan_ablation(_spec())
        assert plan.runs_dropped == len(full.lesioned) - 2

    def test_inapplicable_component_yields_skipped_with_reason(self):
        # A baseline already running complete invalidation cannot have
        # its selective invalidation removed: the planner must record
        # why, not crash, and must not emit a run for it.
        point = _point().with_variables(
            invalidation=InvalidationScheme.COMPLETE
        )
        plan = plan_ablation(_spec(point=point))
        skipped = {entry.components: entry.reason for entry in plan.skipped}
        assert ("selective-invalidation",) in skipped
        assert "already squashes completely" in skipped[
            ("selective-invalidation",)
        ]
        assert all(
            "selective-invalidation" not in run.components
            for run in plan.runs
        )

    def test_skipped_reasons_propagate_through_pairs(self):
        point = _point(update_timing="I")
        plan = plan_ablation(_spec(point=point), pairs=True)
        assert any(
            "delayed-update" in entry.components and len(entry.components) == 2
            for entry in plan.skipped
        )

    def test_run_ids_insensitive_to_registry_order(self):
        components = default_registry().components()
        forward = plan_ablation(_spec(), ComponentRegistry(components))
        backward = plan_ablation(
            _spec(), ComponentRegistry(list(reversed(components)))
        )
        assert [run.run_id for run in forward.runs] == [
            run.run_id for run in backward.runs
        ]
        assert forward.fingerprint == backward.fingerprint

    @settings(max_examples=10, deadline=None)
    @given(st.permutations(default_registry().names()))
    def test_run_ids_insensitive_to_any_registry_permutation(self, order):
        source = {c.name: c for c in default_registry()}
        plan = plan_ablation(
            _spec(), ComponentRegistry([source[name] for name in order])
        )
        reference = plan_ablation(_spec())
        assert [run.run_id for run in plan.runs] == [
            run.run_id for run in reference.runs
        ]

    def test_run_ids_stable_across_processes(self):
        # The whole point of content-hash IDs: a fresh interpreter
        # planning the same spec emits byte-identical IDs.
        plan = plan_ablation(_spec())
        script = (
            "from repro.ablation import *\n"
            "from repro.core.model import GREAT_MODEL\n"
            "from repro.engine.config import ProcessorConfig\n"
            "spec = AblationSpec(benchmarks=('micro:fib',),"
            " point=AblationPoint(config=ProcessorConfig(issue_width=4,"
            f" window_size=24), model=GREAT_MODEL), max_instructions={_LIMIT})\n"
            "plan = plan_ablation(spec)\n"
            "print('\\n'.join(run.run_id for run in plan.runs))\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=60,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.split() == [run.run_id for run in plan.runs]

    def test_run_ids_sensitive_to_spec_content(self):
        base = plan_ablation(_spec())
        other_limit = plan_ablation(_spec(max_instructions=_LIMIT + 1))
        other_bench = plan_ablation(_spec(benchmarks=("micro:reduction",)))
        assert base.baseline.run_id != other_limit.baseline.run_id
        assert base.baseline.run_id != other_bench.baseline.run_id

    def test_run_id_shape_matches_job_key_discipline(self):
        for run in plan_ablation(_spec()).runs:
            assert len(run.run_id) == 24
            int(run.run_id, 16)  # hex

    def test_empty_benchmark_set_rejected(self):
        with pytest.raises(ValueError, match="at least one benchmark"):
            AblationSpec(benchmarks=(), point=_point())


@pytest.fixture(scope="module")
def executed_report():
    """One executed tiny ablation shared by the report tests."""
    plan = plan_ablation(_spec())
    executed = execute_plan(plan)
    mismatches = verify_engine_identity(executed)
    report = build_report(
        plan, executed, engine_mismatches=mismatches, revision="test"
    )
    return plan, executed, mismatches, report


class TestExecuteAndReport:
    def test_engine_lesions_are_bit_identical_and_zero_importance(
        self, executed_report
    ):
        _, _, mismatches, report = executed_report
        assert mismatches == []
        engine_entries = [e for e in report["components"] if e["engine"]]
        assert {e["label"] for e in engine_entries} == {
            "no-engine-batching", "no-engine-specialization"
        }
        for entry in engine_entries:
            assert entry["importance"] == 0.0
            assert not entry["harmful"]

    def test_report_validates_and_ranks_by_importance(self, executed_report):
        _, _, _, report = executed_report
        validate_report(report)
        importances = [e["importance"] for e in report["components"]]
        assert importances == sorted(importances, reverse=True)
        assert len(report["components"]) >= 6

    def test_harmful_flag_tracks_negative_importance(self, executed_report):
        _, _, _, report = executed_report
        for entry in report["components"]:
            assert entry["harmful"] == (entry["importance"] < 0)

    def test_header_block_matches_perf_record_convention(
        self, executed_report
    ):
        plan, _, _, report = executed_report
        assert report["v"] == 1
        assert report["kind"] == "ablation"
        assert report["revision"] == "test"
        assert report["fingerprint"] == plan.fingerprint

    def test_renderings_cover_every_component(self, executed_report):
        _, _, _, report = executed_report
        text = render_text(report)
        csv = render_csv(report)
        for entry in report["components"]:
            joined = "+".join(entry["components"])
            assert joined in text
            assert joined in csv
        assert "baseline" in csv.splitlines()[1]
        assert len(csv.splitlines()) == 2 + len(report["components"])

    def test_report_record_block_shape(self, executed_report):
        _, _, _, report = executed_report
        block = report_record(report)
        assert block["fingerprint"] == report["fingerprint"]
        assert set(block["importance"]) == {
            "+".join(e["components"]) for e in report["components"]
        }

    def test_write_report_round_trips(self, executed_report, tmp_path):
        _, _, _, report = executed_report
        path = write_report(report, tmp_path / "nested" / "report.json")
        assert json.loads(path.read_text()) == report

    def test_executed_runs_align_with_plan(self, executed_report):
        plan, executed, _, _ = executed_report
        assert [item.run.run_id for item in executed] == [
            run.run_id for run in plan.runs
        ]
        for item in executed:
            assert len(item.results) == len(item.run.jobs)
            assert len(item.base_results) == len(item.run.base_jobs)

    def test_model_lesions_change_simulation_outcomes(self, executed_report):
        # At least one mechanism must matter on this workload, or the
        # whole framework is measuring nothing.
        _, _, _, report = executed_report
        assert any(
            e["importance"] != 0.0 for e in report["components"]
        )


class TestBackendEquivalence:
    def test_pool_and_cluster_bit_identical_to_serial(self, executed_report):
        plan, serial, _, _ = executed_report
        pooled = execute_plan(plan, jobs=2)
        clustered = execute_plan(plan, jobs=2, backend="cluster")
        for label, other in (("pool", pooled), ("cluster", clustered)):
            assert [item.run.run_id for item in other] == [
                item.run.run_id for item in serial
            ], label
            for mine, reference in zip(other, serial):
                assert [r.counters for r in mine.results] == [
                    r.counters for r in reference.results
                ], (label, mine.run.label)
                assert [r.counters for r in mine.base_results] == [
                    r.counters for r in reference.base_results
                ], (label, mine.run.label)


class TestValidateReport:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_report([])

    def test_rejects_wrong_kind(self, executed_report):
        _, _, _, report = executed_report
        with pytest.raises(ValueError, match="not an ablation report"):
            validate_report({**report, "kind": "throughput"})

    def test_rejects_missing_fields(self, executed_report):
        _, _, _, report = executed_report
        broken = dict(report)
        del broken["fingerprint"]
        with pytest.raises(ValueError, match="fingerprint"):
            validate_report(broken)

    def test_rejects_malformed_run_id(self, executed_report):
        _, _, _, report = executed_report
        broken = json.loads(json.dumps(report))
        broken["components"][0]["run_id"] = "short"
        with pytest.raises(ValueError, match="malformed run_id"):
            validate_report(broken)
