"""Visualization tests: sparklines, timelines, engine sampling."""

import pytest

from repro.engine.config import ProcessorConfig
from repro.engine.pipeline import PipelineSimulator
from repro.trace.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.viz import render_ipc_comparison, render_timeline, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        out = sparkline([5.0] * 10)
        assert len(out) == 10
        assert len(set(out)) == 1

    def test_monotone_series_rises(self):
        out = sparkline([float(i) for i in range(8)], width=8)
        assert out[0] < out[-1]  # block characters are ordinal

    def test_resampling_to_width(self):
        out = sparkline([float(i) for i in range(1000)], width=40)
        assert len(out) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0], width=40)) == 2

    def test_width_validation(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestEngineSampling:
    def _samples(self, interval):
        trace = generate_synthetic_trace(SyntheticTraceConfig(length=600))
        config = ProcessorConfig(
            issue_width=4, window_size=16, sample_interval=interval
        )
        sim = PipelineSimulator(trace, config)
        sim.run()
        return sim

    def test_sampling_disabled_by_default(self):
        trace = generate_synthetic_trace(SyntheticTraceConfig(length=100))
        sim = PipelineSimulator(trace, ProcessorConfig(4, 16))
        sim.run()
        assert sim.samples == []

    def test_samples_cover_the_run(self):
        sim = self._samples(interval=10)
        assert len(sim.samples) >= 5
        cycles = [s[0] for s in sim.samples]
        assert cycles == sorted(cycles)
        retired = [s[1] for s in sim.samples]
        assert retired == sorted(retired)  # cumulative
        assert all(0 <= occ <= 16 for __, __, occ in sim.samples)


class TestTimelineRender:
    def test_no_samples_message(self):
        assert "no samples" in render_timeline([], label="x")

    def test_timeline_contains_both_series(self):
        samples = [(10 * i, 8 * i, (i * 3) % 16) for i in range(1, 30)]
        text = render_timeline(samples, label="run")
        assert "IPC" in text and "occupancy" in text
        assert "run" in text

    def test_comparison_alignment(self):
        samples = [(10 * i, 8 * i, 4) for i in range(1, 20)]
        text = render_ipc_comparison({"base": samples, "supermodel": samples})
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].index("mean IPC") == lines[1].index("mean IPC")
