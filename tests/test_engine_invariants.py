"""Property-based engine invariants over randomized synthetic workloads.

Whatever the workload, configuration, model and confidence: the simulation
must terminate, retire exactly the trace, never exceed structural bounds,
and be bit-identical when repeated.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.model import GOOD_MODEL, GREAT_MODEL, SUPER_MODEL
from repro.engine.config import ProcessorConfig
from repro.engine.pipeline import PipelineSimulator
from repro.engine.sim import run_baseline, run_trace
from repro.trace.synthetic import SyntheticTraceConfig, generate_synthetic_trace

_configs = st.builds(
    ProcessorConfig,
    issue_width=st.sampled_from([2, 4, 8]),
    window_size=st.sampled_from([8, 16, 32]),
)

_workloads = st.builds(
    SyntheticTraceConfig,
    length=st.integers(50, 400),
    chain_length=st.integers(1, 6),
    predictable_fraction=st.sampled_from([0.0, 0.5, 1.0]),
    value_period=st.integers(1, 6),
    load_every=st.sampled_from([0, 4, 9]),
    branch_every=st.sampled_from([0, 8, 16]),
    branch_taken_bias=st.sampled_from([0.1, 0.5, 0.9]),
    seed=st.integers(0, 99),
)

_slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_slow
@given(workload=_workloads, config=_configs)
def test_baseline_terminates_and_retires_everything(workload, config):
    trace = generate_synthetic_trace(workload)
    result = run_baseline(trace, config)
    assert result.counters.retired == len(trace)
    assert result.counters.window_peak <= config.window_size
    # retirement bandwidth lower-bounds the cycle count
    assert result.cycles >= len(trace) / config.retire_width


@_slow
@given(
    workload=_workloads,
    config=_configs,
    model=st.sampled_from([SUPER_MODEL, GREAT_MODEL, GOOD_MODEL]),
    confidence=st.sampled_from(["R", "O"]),
    timing=st.sampled_from(["I", "D"]),
)
def test_speculative_runs_terminate(workload, config, model, confidence, timing):
    trace = generate_synthetic_trace(workload)
    result = run_trace(
        trace, config, model, confidence=confidence, update_timing=timing
    )
    assert result.counters.retired == len(trace)
    assert result.counters.misspeculations <= result.counters.speculated
    assert result.counters.speculated <= result.counters.predictions
    if confidence == "O":
        assert result.counters.misspeculations == 0


@_slow
@given(workload=_workloads, config=_configs)
def test_simulation_is_deterministic(workload, config):
    trace = generate_synthetic_trace(workload)

    def run_once():
        return run_trace(
            trace, config, GREAT_MODEL, confidence="R", update_timing="D"
        ).counters

    a, b = run_once(), run_once()
    assert a.cycles == b.cycles
    assert a.predictions == b.predictions
    assert a.misspeculations == b.misspeculations
    assert a.reissues == b.reissues


@_slow
@given(workload=_workloads)
def test_oracle_confidence_dominates_never_speculating(workload):
    """Oracle speculation (only-correct predictions used) must never lose
    badly to the base processor: misspeculation is impossible, so the only
    differences are second-order structural effects."""
    trace = generate_synthetic_trace(workload)
    config = ProcessorConfig(issue_width=4, window_size=16)
    base = run_baseline(trace, config)
    oracle = run_trace(trace, config, SUPER_MODEL, confidence="O",
                       update_timing="I")
    assert oracle.cycles <= base.cycles * 1.05 + 5


def test_max_cycles_guard_trips():
    from repro.engine.pipeline import SimulationError
    from repro.trace.record import TraceRecord
    from repro.isa.opcodes import Opcode

    trace = [
        TraceRecord(0, 0x1000, Opcode.ADD, (4,), 8, 1, next_pc=0x1008)
    ] * 1
    config = ProcessorConfig(issue_width=4, window_size=8, max_cycles=0)
    with pytest.raises(SimulationError, match="deadlock"):
        PipelineSimulator(trace, config).run()
