"""The config-specialized engine codegen (repro.engine.specialize).

Equivalence strategy: the golden suites (``test_golden_counters.py``,
``test_golden_variants.py``) now pin the *specialized* path, because
specialization is on by default.  This file pins the *generic* path
against the very same snapshot JSONs — both engines bit-identical to
one frozen truth is both engines bit-identical to each other, for every
snapshot, at the cost of one extra pass per snapshot.

On top of that: direct generic-vs-specialized equivalence across every
verification x invalidation scheme pair (branches the golden grids
never take), fingerprint-keyed cache behaviour, the full fallback
ladder (env kill-switch, explicit keyword, live tracer, codegen
failure), and backend bit-identity of a small grid on the serial, pool
and cluster backends.
"""

import json
from dataclasses import fields, replace
from functools import lru_cache
from pathlib import Path

import pytest

from repro.asm import assemble
from repro.core.model import GREAT_MODEL, SpeculativeExecutionModel
from repro.core.variables import (
    InvalidationScheme,
    VerificationScheme,
)
from repro.engine.config import ProcessorConfig, paper_config
from repro.engine.pipeline import PipelineSimulator
from repro.engine.sim import run_baseline, run_trace
from repro.engine.specialize import (
    SPECIALIZE_ENV_VAR,
    clear_cache,
    simulator_class,
)
from repro.func import Machine
from repro.harness.parallel import SimJob, run_jobs
from repro.programs.micro import micro_kernel
from repro.programs.suite import benchmark_suite
from repro.trace.capture import capture_trace
from repro.vp.confidence import SaturatingConfidenceEstimator
from repro.vp.hybrid import HybridPredictor
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import StridePredictor
from repro.vp.tagged import TaggedContextPredictor

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
MAIN_SNAPSHOTS = sorted(GOLDEN_DIR.glob("*.json"))
VARIANT_SNAPSHOTS = sorted((GOLDEN_DIR / "variants").glob("*.json"))

MICRO_TRACE_LIMIT = 3000
SPEC_TRACE_LIMIT = 2000

_CONFIDENCE = {
    "R": lambda: "R",
    "SaturatingConfidenceEstimator": SaturatingConfidenceEstimator,
}
_PREDICTOR = {
    "context": lambda: None,
    "LastValuePredictor": LastValuePredictor,
    "StridePredictor": StridePredictor,
    "HybridPredictor": HybridPredictor,
    "TaggedContextPredictor": TaggedContextPredictor,
}


def counters_dict(counters) -> dict:
    return {
        f.name: getattr(counters, f.name)
        for f in fields(counters)
        if f.name != "extra"
    }


@lru_cache(maxsize=None)
def _load_trace(label: str):
    kind, name = label.split("_", 1)
    if kind == "micro":
        machine = Machine(assemble(micro_kernel(name)))
        return capture_trace(machine, MICRO_TRACE_LIMIT)
    for spec in benchmark_suite():
        if spec.name == name:
            return spec.trace(SPEC_TRACE_LIMIT)
    raise KeyError(label)


def _snapshot_config(snapshot) -> ProcessorConfig:
    return ProcessorConfig(
        issue_width=snapshot["config"]["issue_width"],
        window_size=snapshot["config"]["window_size"],
    )


# -- generic path pinned against every golden snapshot ---------------------


@pytest.mark.parametrize(
    "path", MAIN_SNAPSHOTS, ids=[p.stem for p in MAIN_SNAPSHOTS]
)
def test_generic_matches_golden(path):
    """specialize=False reproduces every main snapshot bit-for-bit (the
    specialized path is pinned by test_golden_counters.py)."""
    snapshot = json.loads(path.read_text())
    trace = _load_trace(snapshot["workload"])
    config = _snapshot_config(snapshot)

    base = run_baseline(trace, config, specialize=False)
    assert base.engine_path == "generic (specialization disabled)"
    assert counters_dict(base.counters) == snapshot["base"]

    vp = run_trace(
        trace, config, GREAT_MODEL, confidence="R", update_timing="D",
        specialize=False,
    )
    assert vp.engine_path == "generic (specialization disabled)"
    assert counters_dict(vp.counters) == snapshot["vp"]


@pytest.mark.parametrize(
    "path", VARIANT_SNAPSHOTS, ids=[p.stem for p in VARIANT_SNAPSHOTS]
)
def test_generic_matches_golden_variants(path):
    snapshot = json.loads(path.read_text())
    trace = _load_trace(snapshot["workload"])
    result = run_trace(
        trace,
        _snapshot_config(snapshot),
        GREAT_MODEL,
        confidence=_CONFIDENCE[snapshot["confidence"]](),
        update_timing=snapshot["update_timing"],
        predictor=_PREDICTOR[snapshot["predictor"]](),
        specialize=False,
    )
    assert result.engine_path == "generic (specialization disabled)"
    assert counters_dict(result.counters) == snapshot["vp"]


# -- scheme pairs the golden grids never reach -----------------------------


_SCHEME_PAIRS = [
    (verification, invalidation)
    for verification in VerificationScheme
    for invalidation in InvalidationScheme
]


@pytest.mark.parametrize(
    "verification,invalidation",
    _SCHEME_PAIRS,
    ids=[f"{v.name}__{i.name}" for v, i in _SCHEME_PAIRS],
)
def test_scheme_pairs_specialized_equals_generic(verification, invalidation):
    """Every verification x invalidation pair folds to a specialized
    class whose counters match the generic engine exactly."""
    model = SpeculativeExecutionModel(
        name=f"spec-test-{verification.name}-{invalidation.name}",
        variables=replace(
            GREAT_MODEL.variables,
            verification=verification,
            invalidation=invalidation,
        ),
        latencies=GREAT_MODEL.latencies,
    )
    trace = _load_trace("micro_fib")[:800]
    config = paper_config("4/24")
    specialized = run_trace(
        trace, config, model, confidence="R", update_timing="D",
        specialize=True,
    )
    generic = run_trace(
        trace, config, model, confidence="R", update_timing="D",
        specialize=False,
    )
    assert specialized.engine_path == "specialized"
    assert counters_dict(specialized.counters) == counters_dict(
        generic.counters
    )


# -- class cache -----------------------------------------------------------


def test_cache_hits_on_equal_fingerprint():
    clear_cache()
    first, path_first = simulator_class(paper_config("8/48"), GREAT_MODEL)
    again, path_again = simulator_class(paper_config("8/48"), GREAT_MODEL)
    assert path_first == path_again == "specialized"
    assert first is again, "equal fingerprints must share one class"
    other, _ = simulator_class(paper_config("4/24"), GREAT_MODEL)
    assert other is not first, "different configs must not share a class"
    assert first.__specialization_key__ != other.__specialization_key__


def test_specialized_class_is_pipeline_subclass_with_source():
    cls, path = simulator_class(paper_config("8/48"), GREAT_MODEL)
    assert path == "specialized"
    assert issubclass(cls, PipelineSimulator) and cls is not PipelineSimulator
    assert "class SpecializedPipelineSimulator" in cls.__specialized_source__


# -- fallback ladder -------------------------------------------------------


def test_env_kill_switch_forces_generic(monkeypatch):
    monkeypatch.setenv(SPECIALIZE_ENV_VAR, "0")
    cls, path = simulator_class(paper_config("8/48"), GREAT_MODEL)
    assert cls is PipelineSimulator
    assert path == "generic (specialization disabled)"
    trace = _load_trace("micro_fib")[:200]
    result = run_baseline(trace, paper_config("4/24"))
    assert result.engine_path == "generic (specialization disabled)"


def test_explicit_keyword_overrides_env(monkeypatch):
    monkeypatch.setenv(SPECIALIZE_ENV_VAR, "0")
    cls, path = simulator_class(
        paper_config("8/48"), GREAT_MODEL, enabled=True
    )
    assert path == "specialized" and cls is not PipelineSimulator


def test_live_tracer_falls_back_generic():
    from repro.obs.tracer import PipelineTracer

    cls, path = simulator_class(
        paper_config("8/48"), GREAT_MODEL, tracer=PipelineTracer()
    )
    assert cls is PipelineSimulator
    assert path == "generic (tracer attached)"


def test_codegen_failure_falls_back_and_caches(monkeypatch):
    import repro.engine.specialize as specialize

    clear_cache()
    calls = []

    def explode(inputs):
        calls.append(inputs.key)
        raise specialize.SpecializationUnsupported("injected failure")

    monkeypatch.setattr(specialize, "build_class_source", explode)
    cls, path = simulator_class(paper_config("8/48"), GREAT_MODEL)
    assert cls is PipelineSimulator
    assert path.startswith("generic (codegen failed:")
    assert "injected failure" in path
    # The failure is cached: the second lookup replays the reason
    # without paying codegen again.
    cls2, path2 = simulator_class(paper_config("8/48"), GREAT_MODEL)
    assert cls2 is PipelineSimulator and path2 == path
    assert len(calls) == 1
    clear_cache()


def test_fallback_runs_still_produce_correct_counters(monkeypatch):
    """A codegen failure must degrade performance, never results."""
    import repro.engine.specialize as specialize

    trace = _load_trace("micro_fib")[:400]
    config = paper_config("4/24")
    want = run_trace(trace, config, GREAT_MODEL, specialize=False)

    clear_cache()
    monkeypatch.setattr(
        specialize,
        "build_class_source",
        lambda inputs: (_ for _ in ()).throw(RuntimeError("boom")),
    )
    got = run_trace(trace, config, GREAT_MODEL)
    assert got.engine_path.startswith("generic (codegen failed:")
    assert counters_dict(got.counters) == counters_dict(want.counters)
    clear_cache()


# -- backends --------------------------------------------------------------


_BACKEND_CONFIG = ProcessorConfig(issue_width=4, window_size=24)
_BACKEND_LIMIT = 400


def _backend_grid() -> list[SimJob]:
    jobs = []
    for name in ("compress", "perl"):
        jobs.append(SimJob(name, _BACKEND_CONFIG, None, _BACKEND_LIMIT))
        jobs.append(SimJob(name, _BACKEND_CONFIG, GREAT_MODEL, _BACKEND_LIMIT))
    return jobs


def _grid_counters(results) -> list[dict]:
    return [counters_dict(r.counters) for r in results]


def test_backends_specialized_equals_generic(monkeypatch):
    """One small grid, four ways: the generic serial reference versus
    the specialized serial, pool and cluster backends — merged cells
    bit-identical everywhere (engine_path legitimately differs and is
    excluded from result equality by design)."""
    grid = _backend_grid()
    monkeypatch.setenv(SPECIALIZE_ENV_VAR, "0")
    reference = run_jobs(grid, jobs=1)
    assert all(
        r.engine_path == "generic (specialization disabled)" for r in reference
    )
    monkeypatch.delenv(SPECIALIZE_ENV_VAR)

    serial = run_jobs(grid, jobs=1)
    assert all(r.engine_path == "specialized" for r in serial)
    assert _grid_counters(serial) == _grid_counters(reference)
    assert serial == reference  # engine_path is compare=False

    pooled = run_jobs(grid, jobs=4)
    assert _grid_counters(pooled) == _grid_counters(reference)

    clustered = run_jobs(grid, jobs=2, backend="cluster")
    assert _grid_counters(clustered) == _grid_counters(reference)


def test_batched_lanes_report_engine_path():
    from repro.engine.batched import run_batch
    from repro.programs.suite import kernel

    trace = kernel("compress").trace(_BACKEND_LIMIT)
    jobs = [
        SimJob("compress", _BACKEND_CONFIG, None, _BACKEND_LIMIT),
        SimJob("compress", _BACKEND_CONFIG, GREAT_MODEL, _BACKEND_LIMIT),
    ]
    results = run_batch(jobs, trace)
    assert [r.engine_path for r in results] == [
        "batched (specialized)",
        "batched (specialized)",
    ]


def test_instrumented_runs_attribute_their_engine_path():
    from repro.obs.run import run_instrumented

    run = run_instrumented("micro:fib", max_instructions=500)
    assert run.engine_path == "generic (tracer attached)"
