"""Harness tests: every experiment runs and has the paper's shape."""

import pytest

from repro.engine.config import ProcessorConfig
from repro.harness.figure1 import render_figure1, run_figure1
from repro.harness.figure3 import figure3_table, render_figure3, run_figure3
from repro.harness.figure4 import render_figure4, run_figure4
from repro.harness.render import render_bar, render_table
from repro.harness.sweeps import (
    invalidation_scheme_sweep,
    latency_sensitivity_sweep,
    predictor_sweep,
    verification_scheme_sweep,
)
from repro.harness.table1 import render_table1, run_table1

_SMALL = dict(max_instructions=1500, benchmarks=["compress", "perl"])
_TINY_CONFIGS = (
    ProcessorConfig(issue_width=4, window_size=24),
)


class TestRender:
    def test_table_alignment(self):
        text = render_table(("A", "Bee"), [("x", 1.5), ("longer", 2)], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.500" in text
        assert "longer" in text

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(("A",), [("x", "y")])

    def test_bar(self):
        assert render_bar(0.0, width=10) == ".........."
        assert render_bar(1.0, width=10) == "##########"
        assert render_bar(1.2, width=10).endswith("+")
        assert len(render_bar(0.5, width=10)) == 10


class TestTable1:
    def test_rows_and_render(self):
        rows = run_table1(max_instructions=2000)
        assert len(rows) == 8
        by_name = {r.benchmark: r for r in rows}
        assert by_name["ijpeg"].paper_predicted_pct == 82.0
        text = render_table1(rows)
        assert "compress" in text and "Paper Predicted %" in text


class TestFigure1:
    def test_seven_scenarios(self):
        scenarios = run_figure1()
        assert len(scenarios) == 7
        labels = [s.label for s in scenarios]
        assert labels[0] == "base"
        assert "good/incorrect" in labels
        text = render_figure1(scenarios)
        assert "retires all 3" in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def cells(self):
        return run_figure3(configs=_TINY_CONFIGS, **_SMALL)

    def test_cell_grid_complete(self, cells):
        assert len(cells) == 1 * 4 * 3  # configs x settings x models
        settings = {c.setting for c in cells}
        assert settings == {"D/R", "I/R", "D/O", "I/O"}

    def test_models_ordered_good_worst(self, cells):
        for setting in ("D/R", "I/R", "D/O", "I/O"):
            group = {c.model_name: c.speedup for c in cells if c.setting == setting}
            assert group["good"] <= group["super"] + 0.02

    def test_render(self, cells):
        assert "Figure 3" in render_figure3(cells)
        assert "HM Speedup" in figure3_table(cells)

    def test_per_benchmark_render(self, cells):
        from repro.harness.figure3 import render_figure3_per_benchmark

        text = render_figure3_per_benchmark(cells, setting="I/R")
        assert "per-benchmark" in text
        assert "compress" in text and "perl" in text
        with pytest.raises(ValueError):
            render_figure3_per_benchmark(cells, setting="Z/Z")

    def test_empty_benchmark_selection_rejected(self):
        with pytest.raises(ValueError):
            run_figure3(benchmarks=["nonexistent"], configs=_TINY_CONFIGS)


class TestFigure4:
    def test_breakdown_shape(self):
        cells = run_figure4(
            max_instructions=2000,
            benchmarks=["compress", "m88ksim"],
            configs=_TINY_CONFIGS,
        )
        assert len(cells) == 2  # one config x {D, I}
        for cell in cells:
            total = (
                cell.breakdown.ch
                + cell.breakdown.cl
                + cell.breakdown.ih
                + cell.breakdown.il
            )
            assert abs(total - 1.0) < 1e-9
        text = render_figure4(cells)
        assert "CH %" in text


class TestSweeps:
    def test_latency_sensitivity(self):
        points = latency_sensitivity_sweep(
            max_instructions=1200, benchmarks=["perl"], values=(0, 1)
        )
        assert len(points) == 12  # 6 fields x 2 values
        labels = {p.label for p in points}
        assert "Verification-Branch=0" in labels

    def test_verification_schemes(self):
        points = verification_scheme_sweep(
            max_instructions=1200, benchmarks=["perl"]
        )
        by_label = {p.label: p.speedup for p in points}
        assert set(by_label) == {
            "parallel-network", "hierarchical", "retirement-based", "hybrid",
        }
        # the paper's taxonomy: the flattened network has the highest
        # performance potential
        assert by_label["parallel-network"] >= max(
            v for k, v in by_label.items() if k != "parallel-network"
        ) - 1e-9

    def test_invalidation_schemes(self):
        points = invalidation_scheme_sweep(
            max_instructions=1200, benchmarks=["perl"]
        )
        assert {p.label for p in points} == {
            "selective-parallel", "selective-hierarchical", "complete",
        }

    def test_predictor_sweep(self):
        points = predictor_sweep(max_instructions=1200, benchmarks=["perl"])
        assert {p.label for p in points} == {
            "context", "last-value", "stride", "hybrid", "tagged-context",
        }
