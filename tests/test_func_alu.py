"""ALU semantics tests, including property-based checks against Python
reference arithmetic."""

from hypothesis import given, strategies as st

from repro.func import alu
from repro.isa.opcodes import Opcode

u64 = st.integers(0, (1 << 64) - 1)


@given(a=u64, b=u64)
def test_add_sub_wrap(a, b):
    assert alu.apply_binop(Opcode.ADD, a, b) == (a + b) % (1 << 64)
    assert alu.apply_binop(Opcode.SUB, a, b) == (a - b) % (1 << 64)


@given(a=u64, b=u64)
def test_bitwise(a, b):
    assert alu.apply_binop(Opcode.AND, a, b) == a & b
    assert alu.apply_binop(Opcode.OR, a, b) == a | b
    assert alu.apply_binop(Opcode.XOR, a, b) == a ^ b
    assert alu.apply_binop(Opcode.NOR, a, b) == (~(a | b)) % (1 << 64)


@given(a=u64, shift=st.integers(0, 63))
def test_shifts(a, shift):
    assert alu.apply_binop(Opcode.SLL, a, shift) == (a << shift) % (1 << 64)
    assert alu.apply_binop(Opcode.SRL, a, shift) == a >> shift
    signed = alu.to_signed(a)
    assert alu.apply_binop(Opcode.SRA, a, shift) == (signed >> shift) % (1 << 64)


def test_shift_amount_masks_to_six_bits():
    assert alu.apply_binop(Opcode.SLL, 1, 64) == 1  # 64 & 0x3f == 0
    assert alu.apply_binop(Opcode.SRL, 8, 65) == 4


@given(a=u64, b=u64)
def test_comparisons(a, b):
    assert alu.apply_binop(Opcode.SLT, a, b) == int(
        alu.to_signed(a) < alu.to_signed(b)
    )
    assert alu.apply_binop(Opcode.SLTU, a, b) == int(a < b)
    expected_min = a if alu.to_signed(a) <= alu.to_signed(b) else b
    assert alu.apply_binop(Opcode.MIN, a, b) == expected_min


@given(a=st.integers(-(1 << 32), 1 << 32), b=st.integers(-(1 << 32), 1 << 32))
def test_div_rem_c_semantics(a, b):
    ua, ub = alu.to_unsigned(a), alu.to_unsigned(b)
    if b == 0:
        assert alu.apply_binop(Opcode.DIV, ua, ub) == (1 << 64) - 1
        assert alu.apply_binop(Opcode.REM, ua, ub) == ua
    else:
        q = alu.to_signed(alu.apply_binop(Opcode.DIV, ua, ub))
        r = alu.to_signed(alu.apply_binop(Opcode.REM, ua, ub))
        assert q * b + r == a  # division identity
        assert abs(r) < abs(b)
        assert r == 0 or (r < 0) == (a < 0)  # remainder follows dividend


@given(a=st.integers(-(1 << 31), 1 << 31), b=st.integers(-(1 << 31), 1 << 31))
def test_mul(a, b):
    ua, ub = alu.to_unsigned(a), alu.to_unsigned(b)
    assert alu.to_signed(alu.apply_binop(Opcode.MUL, ua, ub)) == a * b


def test_mulh():
    big = alu.to_unsigned(1 << 40)
    assert alu.apply_binop(Opcode.MULH, big, big) == 1 << 16


def test_immediate_ops_match_binops():
    assert alu.apply_immop(Opcode.ADDI, 10, -3) == 7
    assert alu.apply_immop(Opcode.ANDI, 0xFF, 0x0F) == 0x0F
    assert alu.apply_immop(Opcode.SLLI, 1, 4) == 16
    assert alu.apply_immop(Opcode.SLTI, 1, 2) == 1


@given(a=u64, b=u64)
def test_branch_conditions(a, b):
    sa, sb = alu.to_signed(a), alu.to_signed(b)
    assert alu.branch_taken(Opcode.BEQ, a, b) == (a == b)
    assert alu.branch_taken(Opcode.BNE, a, b) == (a != b)
    assert alu.branch_taken(Opcode.BLT, a, b) == (sa < sb)
    assert alu.branch_taken(Opcode.BGE, a, b) == (sa >= sb)
    assert alu.branch_taken(Opcode.BLTZ, a, b) == (sa < 0)
    assert alu.branch_taken(Opcode.BEQZ, a, b) == (a == 0)
    assert alu.branch_taken(Opcode.BNEZ, a, b) == (a != 0)


@given(x=st.floats(-1e6, 1e6, allow_nan=False))
def test_fixed_point_round_trip(x):
    encoded = alu.float_to_fixed(x)
    assert abs(alu.fixed_to_float(encoded) - x) < 1e-9 * max(1.0, abs(x))


def test_fixed_point_arithmetic():
    two = alu.float_to_fixed(2.0)
    three = alu.float_to_fixed(3.0)
    assert alu.fixed_to_float(alu.apply_binop(Opcode.FMUL, two, three)) == 6.0
    assert alu.fixed_to_float(alu.apply_binop(Opcode.FDIV, three, two)) == 1.5
    assert alu.fixed_to_float(alu.apply_binop(Opcode.FADD, two, three)) == 5.0
    assert alu.apply_binop(Opcode.FDIV, two, 0) == (1 << 64) - 1


def test_non_alu_opcode_rejected():
    import pytest

    with pytest.raises(ValueError):
        alu.apply_binop(Opcode.LD, 1, 2)
    with pytest.raises(ValueError):
        alu.apply_immop(Opcode.ADD, 1, 2)
    with pytest.raises(ValueError):
        alu.branch_taken(Opcode.ADD, 1, 2)
