"""Observability subsystem: tracer, aggregation, exporters, wiring."""

from __future__ import annotations

import json

import pytest

from repro.core.events import LatencyEventKind
from repro.obs import (
    EventRing,
    LatencyHistogram,
    NULL_TRACER,
    NullTracer,
    PipelineTracer,
    aggregate_by_opcode,
    aggregate_latency_events,
    chrome_trace,
    lifecycle_spans,
    metrics_csv,
    metrics_dict,
    run_instrumented,
    summary_table,
    validate_chrome_trace,
)
from repro.obs.tracer import LatencyEvent, LifecycleMark


@pytest.fixture(scope="module")
def fib_good():
    """One instrumented micro:fib run under the good model (module-shared:
    the run is deterministic and every test only reads from it)."""
    return run_instrumented("micro:fib", model="good", max_instructions=8000)


# -- ring buffer ----------------------------------------------------------


def test_ring_append_order_and_clear():
    ring = EventRing(capacity=8)
    for i in range(5):
        ring.append(i)
    assert ring.items() == [0, 1, 2, 3, 4]
    assert ring.dropped == 0
    ring.clear()
    assert ring.items() == [] and ring.dropped == 0


def test_ring_overwrites_oldest_and_counts_drops():
    ring = EventRing(capacity=4)
    for i in range(10):
        ring.append(i)
    assert ring.items() == [6, 7, 8, 9]  # oldest evicted, order kept
    assert ring.dropped == 6


def test_ring_rejects_bad_capacity():
    with pytest.raises(ValueError):
        EventRing(capacity=0)


# -- tracers --------------------------------------------------------------


def test_null_tracer_is_inert():
    assert NullTracer.enabled is False
    assert NULL_TRACER.enabled is False
    NULL_TRACER.bind(object())
    NULL_TRACER.mark(1, 2, 3, "fetch")
    NULL_TRACER.latency(LatencyEventKind.EXEC_EQUALITY, 1, 2, 3, 4)


def test_pipeline_tracer_records_marks_and_latencies():
    tracer = PipelineTracer(capacity=16)
    assert tracer.enabled is True
    tracer.mark(5, 1, 0, "dispatch", "d")
    tracer.latency(LatencyEventKind.EXEC_EQUALITY, 1, 0, 5, 9, "add")
    marks = tracer.lifecycle_marks()
    events = tracer.latency_events()
    assert marks == [LifecycleMark(5, 1, 0, "dispatch", "d")]
    assert events == [LatencyEvent(LatencyEventKind.EXEC_EQUALITY, 1, 0, 5, 9, "add")]
    assert events[0].latency == 4
    assert tracer.kinds_seen() == {LatencyEventKind.EXEC_EQUALITY}


# -- paper taxonomy -------------------------------------------------------


def test_eight_kinds_with_paper_names():
    assert len(LatencyEventKind) == 8
    names = {kind.paper_name for kind in LatencyEventKind}
    assert "Execution - Equality" in names
    assert "Invalidation - Reissue" in names
    assert len(names) == 8


def test_all_eight_kinds_observed_on_fib_good(fib_good):
    assert fib_good.kinds_seen == set(LatencyEventKind)


# -- zero-cost / bit-exactness -------------------------------------------


def test_instrumented_counters_bit_identical(fib_good):
    from repro.core.model import named_models
    from repro.engine.config import paper_config
    from repro.engine.sim import run_trace
    from repro.obs.run import resolve_trace

    trace = resolve_trace("micro:fib", 8000)
    plain = run_trace(trace, paper_config("8/48"), named_models()["good"],
                      confidence="real", update_timing="D")
    null = run_trace(trace, paper_config("8/48"), named_models()["good"],
                     confidence="real", update_timing="D", tracer=NULL_TRACER)
    assert plain.counters == null.counters == fib_good.result.counters


# -- aggregation ----------------------------------------------------------


def test_histogram_stats_and_percentiles():
    hist = LatencyHistogram()
    for value in (1, 2, 2, 3, 10):
        hist.add(value)
    assert hist.count == 5
    assert (hist.min, hist.max) == (1, 10)
    assert hist.mean == pytest.approx(3.6)
    assert hist.percentile(50) == 2
    assert hist.percentile(90) == 10
    assert hist.percentile(100) == 10
    summary = hist.as_dict()
    assert summary["count"] == 5 and summary["p50"] == 2


def test_histogram_merge():
    a, b = LatencyHistogram(), LatencyHistogram()
    a.add(1)
    b.add(3)
    b.add(3)
    a.merge(b)
    assert a.count == 3 and a.max == 3


def test_aggregate_latency_events(fib_good):
    by_kind = aggregate_latency_events(fib_good.tracer)
    assert by_kind[LatencyEventKind.EXEC_EQUALITY].count > 0
    assert by_kind[LatencyEventKind.INVALIDATION_REISSUE].count > 0
    by_op = aggregate_by_opcode(fib_good.tracer)
    ops = set(by_op[LatencyEventKind.EXEC_EQUALITY])
    assert ops  # at least one opcode bucket


def test_lifecycle_spans_pair_consecutive_marks():
    tracer = PipelineTracer(capacity=16)
    tracer.mark(1, 7, -1, "fetch")
    tracer.mark(3, 7, 4, "dispatch")
    tracer.mark(9, 7, 4, "retire")
    spans = lifecycle_spans(tracer)
    assert [(s.name, s.start, s.end) for s in spans] == [
        ("fetch→dispatch", 1, 3),
        ("dispatch→retire", 3, 9),
    ]
    assert spans[0].sid == 4  # backfilled from the later mark


# -- exporters ------------------------------------------------------------


def test_chrome_trace_schema_valid(fib_good):
    doc = chrome_trace(fib_good.tracer, label="fib")
    assert validate_chrome_trace(doc) == []
    json.dumps(doc)  # serialisable
    phases = {event["ph"] for event in doc["traceEvents"]}
    assert "X" in phases and "M" in phases


def test_validate_chrome_trace_flags_problems():
    bad = {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "ts": 0}]}
    problems = validate_chrome_trace(bad)
    assert problems  # missing name and dur


def test_metrics_exports(fib_good):
    csv_text = metrics_csv(fib_good.histograms)
    assert csv_text.splitlines()[0].startswith("kind,")
    assert "exec-equality" in csv_text
    payload = metrics_dict(fib_good.histograms, label="fib")
    assert payload["config"] == "fib"
    assert "exec-equality" in payload["latency_events"]
    table = summary_table(fib_good.histograms, title="fib")
    # the table is a coverage checklist: all eight kinds always get a row
    for kind in LatencyEventKind:
        assert kind.paper_name in table


# -- harness + viz wiring -------------------------------------------------


def test_instrument_variant_reproduces_sweep_point():
    from repro.core.model import named_models
    from repro.engine.config import paper_config
    from repro.harness.sweeps import SweepVariant, instrument_variant

    variant = SweepVariant(
        "good D/R", paper_config("8/48"), named_models()["good"],
        confidence="R", update_timing="D",
    )
    run = instrument_variant(variant, "micro:fib", max_instructions=2000)
    assert run.model_name == "good"
    assert run.tracer.lifecycle_marks()
    assert run.result.counters.retired > 0


def test_samples_from_tracer_matches_counters(fib_good):
    from repro.viz import render_timeline, samples_from_tracer

    samples = samples_from_tracer(fib_good.tracer, interval=100)
    assert samples[-1][1] == fib_good.result.counters.retired
    assert all(occ >= 0 for _, _, occ in samples)
    assert "IPC" in render_timeline(samples, label="fib")
    with pytest.raises(ValueError):
        samples_from_tracer(fib_good.tracer, interval=0)


# -- CLI ------------------------------------------------------------------


def test_cli_obs_histo_and_export(capsys):
    from repro.cli import main

    assert main(["obs", "histo", "micro:fib", "--model", "good",
                 "--max-instructions", "2000"]) == 0
    out = capsys.readouterr().out
    assert "Execution - Equality" in out

    assert main(["obs", "export", "micro:fib", "--model", "good",
                 "--max-instructions", "2000", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "latency_events" in payload


def test_cli_obs_trace_writes_valid_json(tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "fib.trace.json"
    assert main(["obs", "trace", "micro:fib", "--model", "good",
                 "--max-instructions", "2000", "--out", str(out_path)]) == 0
    doc = json.loads(out_path.read_text())
    assert validate_chrome_trace(doc) == []
