"""Smoke tests: every example script runs and prints what it promises."""

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    scripts = sorted(p.name for p in _EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 5


def test_quickstart():
    out = _run("quickstart.py")
    assert "speedup over base" in out
    assert "value predictions" in out


def test_custom_kernel():
    out = _run("custom_kernel.py")
    assert "super" in out and "good" in out
    assert "speedup" in out


def test_microbenchmarks():
    out = _run("microbenchmarks.py")
    assert "reduction" in out and "pointer_chase" in out


def test_pipeline_visualization():
    out = _run("pipeline_visualization.py")
    assert "retires all 3 in 5 cycles" in out
    assert "good/incorrect" in out


@pytest.mark.slow
def test_execution_timeline():
    out = _run("execution_timeline.py", timeout=600)
    assert "mean IPC" in out


@pytest.mark.slow
def test_predictor_comparison():
    out = _run("predictor_comparison.py", timeout=600)
    assert "context (paper)" in out


@pytest.mark.slow
def test_design_space_exploration():
    out = _run("design_space_exploration.py", timeout=900)
    assert "Equality-Verification" in out


def test_latency_events():
    out = _run("latency_events.py")
    assert "latency events — good" in out
    assert "latency events — great" in out
    assert "Verification - Free Issue Resource" in out
    assert "Invalidation - Reissue" in out


def test_ablation_report():
    out = _run("ablation_report.py")
    assert "planned 10 runs" in out
    assert "importance" in out
    assert "engine-batching" in out and "engine" in out
    assert "baseline speedup" in out
