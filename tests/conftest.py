"""Shared test fixtures.

The persistent trace cache (``repro.trace.cache``) defaults to the
user's ``~/.cache``; tests must stay hermetic, so the whole suite runs
against a throwaway per-session cache directory instead.  Individual
tests still override ``REPRO_TRACE_CACHE`` freely (``monkeypatch.setenv``
takes precedence and is undone per test).
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_trace_cache(tmp_path_factory):
    directory = tmp_path_factory.mktemp("trace-cache")
    previous = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = str(directory)
    yield
    if previous is None:
        os.environ.pop("REPRO_TRACE_CACHE", None)
    else:
        os.environ["REPRO_TRACE_CACHE"] = previous


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_store():
    """Pin the result store off for the whole suite.

    A developer's ``REPRO_RESULT_STORE`` must not leak into tests —
    ``run_jobs`` would silently serve warm results and mask execution
    bugs.  Tests that exercise the store opt in per-test with
    ``monkeypatch.setenv`` (which takes precedence and is undone) or by
    passing explicit directories.
    """
    previous = os.environ.get("REPRO_RESULT_STORE")
    os.environ["REPRO_RESULT_STORE"] = "off"
    yield
    if previous is None:
        os.environ.pop("REPRO_RESULT_STORE", None)
    else:
        os.environ["REPRO_RESULT_STORE"] = previous
