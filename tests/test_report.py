"""Reproduction-report generator tests."""

import json
from pathlib import Path

import pytest

from repro.harness.report import Verdict, check_claims, render_report

_RESULTS = Path(__file__).resolve().parent.parent / "results" / "full_results.json"


def _synthetic_results(good_below_base=True):
    """A minimal, paper-shaped results dict."""
    configs = ["4/24", "8/48"]
    settings = ["D/R", "I/R", "D/O", "I/O"]
    figure3 = []
    for ci, config in enumerate(configs):
        for setting in settings:
            bonus = 0.05 * ci + (0.03 if "O" in setting else 0.0)
            figure3.append(
                {"config": config, "setting": setting, "model": "good",
                 "speedup": (0.99 if good_below_base and ci == 0 else 1.01)
                 + bonus}
            )
            figure3.append(
                {"config": config, "setting": setting, "model": "great",
                 "speedup": 1.05 + bonus}
            )
            figure3.append(
                {"config": config, "setting": setting, "model": "super",
                 "speedup": 1.08 + bonus}
            )
    return {
        "trace_limit": 1000,
        "table1": [
            {"benchmark": "compress", "predicted_pct": 71.0,
             "paper_predicted_pct": 70.5}
        ],
        "figure1": {
            "base": 5, "super/correct": 3, "great/correct": 3,
            "good/correct": 4, "super/incorrect": 5,
            "great/incorrect": 6, "good/incorrect": 7,
        },
        "figure3": figure3,
        "figure4": [
            {"config": "4/24", "timing": "D", "CH": 0.30, "CL": 0.20,
             "IH": 0.01, "IL": 0.49},
            {"config": "4/24", "timing": "I", "CH": 0.35, "CL": 0.25,
             "IH": 0.01, "IL": 0.39},
            {"config": "8/48", "timing": "D", "CH": 0.28, "CL": 0.18,
             "IH": 0.01, "IL": 0.53},
            {"config": "8/48", "timing": "I", "CH": 0.35, "CL": 0.25,
             "IH": 0.01, "IL": 0.39},
        ],
        "ABL-L latency sensitivity": {
            "Exec-Eq-Verification=0": 1.06, "Exec-Eq-Verification=2": 0.98,
            "Exec-Eq-Invalidation=0": 1.06, "Exec-Eq-Invalidation=2": 1.05,
            "Invalidation-Reissue=0": 1.06, "Invalidation-Reissue=2": 1.06,
        },
    }


def test_all_claims_pass_on_paper_shaped_data():
    verdicts = check_claims(_synthetic_results())
    assert len(verdicts) == 10
    assert all(v.reproduced for v in verdicts)


def test_deviation_detected():
    results = _synthetic_results()
    # break the Figure 1 misprediction ordering
    results["figure1"]["good/incorrect"] = 4
    verdicts = check_claims(results)
    broken = [v for v in verdicts if "misprediction ordering" in v.claim]
    assert broken and not broken[0].reproduced
    assert broken[0].tag == "DEVIATION"


def test_render_report_contains_tables():
    text = render_report(_synthetic_results())
    assert "# Reproduction report" in text
    assert "REPRODUCED" in text
    assert "| 4/24 | D/R |" in text


@pytest.mark.skipif(not _RESULTS.exists(), reason="no full-results run yet")
def test_actual_full_results_reproduce_all_claims():
    """The committed full-scale run must pass every shape check."""
    results = json.loads(_RESULTS.read_text())
    verdicts = check_claims(results)
    failures = [v for v in verdicts if not v.reproduced]
    assert not failures, [f"{v.claim}: {v.evidence}" for v in failures]


def test_verdict_tags():
    assert Verdict("x", True, "e").tag == "REPRODUCED"
    assert Verdict("x", False, "e").tag == "DEVIATION"
