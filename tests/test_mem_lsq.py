"""Load/store queue tests: ordering, disambiguation, forwarding, squash."""

import pytest

from repro.mem.lsq import LoadStoreQueue


def test_allocation_order_enforced():
    lsq = LoadStoreQueue(4)
    lsq.allocate(1, is_store=True)
    lsq.allocate(3, is_store=False)
    with pytest.raises(ValueError, match="program order"):
        lsq.allocate(2, is_store=False)
    with pytest.raises(ValueError, match="duplicate"):
        lsq.allocate(3, is_store=False)


def test_capacity():
    lsq = LoadStoreQueue(2)
    lsq.allocate(0, True)
    lsq.allocate(1, False)
    assert lsq.full
    with pytest.raises(RuntimeError, match="full"):
        lsq.allocate(2, False)
    with pytest.raises(ValueError):
        LoadStoreQueue(0)


def test_prior_store_addresses_known():
    lsq = LoadStoreQueue(8)
    lsq.allocate(0, is_store=True)
    lsq.allocate(1, is_store=False)  # the load under test
    assert not lsq.prior_store_addresses_known(1)
    lsq.set_address(0, 0x2000, 8)
    assert lsq.prior_store_addresses_known(1)
    # a *younger* store never blocks the load
    lsq.allocate(2, is_store=True)
    assert lsq.prior_store_addresses_known(1)


def test_clear_address_reverts_knowledge():
    lsq = LoadStoreQueue(8)
    lsq.allocate(0, is_store=True)
    lsq.allocate(1, is_store=False)
    lsq.set_address(0, 0x2000, 8)
    lsq.clear_address(0)
    assert not lsq.prior_store_addresses_known(1)


def test_forwarding_exact_and_containment():
    lsq = LoadStoreQueue(8)
    lsq.allocate(0, is_store=True)
    lsq.set_address(0, 0x2000, 8)
    lsq.set_store_data_ready(0)
    lsq.allocate(1, is_store=False)
    assert lsq.find_forwarder(1, 0x2000, 8).seq == 0
    assert lsq.find_forwarder(1, 0x2004, 4).seq == 0  # contained
    assert lsq.find_forwarder(1, 0x2006, 4) is None  # straddles the end


def test_forwarding_requires_data_ready():
    lsq = LoadStoreQueue(8)
    lsq.allocate(0, is_store=True)
    lsq.set_address(0, 0x2000, 8)
    lsq.allocate(1, is_store=False)
    assert lsq.find_forwarder(1, 0x2000, 8) is None
    lsq.set_store_data_ready(0)
    assert lsq.find_forwarder(1, 0x2000, 8) is not None


def test_youngest_older_store_wins():
    lsq = LoadStoreQueue(8)
    for seq in (0, 1):
        lsq.allocate(seq, is_store=True)
        lsq.set_address(seq, 0x2000, 8)
        lsq.set_store_data_ready(seq)
    lsq.allocate(2, is_store=False)
    assert lsq.find_forwarder(2, 0x2000, 8).seq == 1


def test_partial_overlap_detection():
    lsq = LoadStoreQueue(8)
    lsq.allocate(0, is_store=True)
    lsq.set_address(0, 0x2004, 4)
    lsq.allocate(1, is_store=False)
    overlap = lsq.overlapping_older_store(1, 0x2000, 8)
    assert overlap is not None and overlap.seq == 0
    # full containment is not a partial overlap
    assert lsq.overlapping_older_store(1, 0x2004, 4) is None
    # disjoint is not an overlap
    assert lsq.overlapping_older_store(1, 0x3000, 8) is None


def test_release_and_squash():
    lsq = LoadStoreQueue(8)
    for seq in range(4):
        lsq.allocate(seq, is_store=(seq % 2 == 0))
    lsq.release(0)
    assert len(lsq) == 3
    removed = lsq.squash_after(1)
    assert removed == [2, 3]
    assert len(lsq) == 1
    assert lsq.get(1) is not None
    lsq.release(99)  # releasing an absent seq is a no-op
    assert len(lsq) == 1


def test_data_ready_rejected_for_loads():
    lsq = LoadStoreQueue(4)
    lsq.allocate(0, is_store=False)
    with pytest.raises(ValueError, match="not a store"):
        lsq.set_store_data_ready(0)
