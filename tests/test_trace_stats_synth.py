"""Trace statistics and synthetic trace generation tests."""

import pytest

from repro.isa.opcodes import OpClass, Opcode
from repro.trace import (
    SyntheticTraceConfig,
    TraceRecord,
    compute_stats,
    generate_synthetic_trace,
)


def _alu(seq, dest=8, srcs=(4,)):
    return TraceRecord(seq, 0x1000 + 8 * seq, Opcode.ADD, srcs, dest, 1,
                       next_pc=0x1008 + 8 * seq)


def test_stats_counts():
    trace = [
        _alu(0),
        TraceRecord(1, 0x1008, Opcode.LD, (8,), 9, 5, 0x2000, 8, None, 0x1010),
        TraceRecord(2, 0x1010, Opcode.SD, (8, 9), None, None, 0x2000, 8, None, 0x1018),
        TraceRecord(3, 0x1018, Opcode.BNE, (8, 9), branch_taken=True, next_pc=0x1000),
    ]
    stats = compute_stats(trace)
    assert stats.total == 4
    assert stats.register_writers == 2
    assert stats.loads == 1 and stats.stores == 1
    assert stats.branches == 1 and stats.taken_branches == 1
    assert stats.prediction_eligible_fraction == 0.5
    assert stats.branch_fraction == 0.25
    assert stats.by_class[OpClass.IALU] == 1
    assert stats.unique_pcs == 4


def test_stats_empty_trace():
    stats = compute_stats([])
    assert stats.total == 0
    assert stats.prediction_eligible_fraction == 0.0
    assert stats.branch_fraction == 0.0


def test_synthetic_trace_is_deterministic():
    config = SyntheticTraceConfig(length=500, seed=3)
    assert generate_synthetic_trace(config) == generate_synthetic_trace(config)


def test_synthetic_trace_length_and_shape():
    config = SyntheticTraceConfig(length=777)
    trace = generate_synthetic_trace(config)
    assert len(trace) == 777
    assert [r.seq for r in trace] == list(range(777))
    stats = compute_stats(trace)
    assert stats.loads > 0
    assert stats.branches > 0


def test_synthetic_predictability_knob():
    lo = compute_stats(
        generate_synthetic_trace(SyntheticTraceConfig(length=2000, predictable_fraction=0.0))
    )
    hi = compute_stats(
        generate_synthetic_trace(SyntheticTraceConfig(length=2000, predictable_fraction=1.0))
    )
    # the knob changes value streams, not the instruction mix
    assert lo.total == hi.total
    assert lo.branches == hi.branches


def test_synthetic_config_validation():
    with pytest.raises(ValueError):
        SyntheticTraceConfig(length=0)
    with pytest.raises(ValueError):
        SyntheticTraceConfig(chain_length=0)
    with pytest.raises(ValueError):
        SyntheticTraceConfig(predictable_fraction=1.5)
    with pytest.raises(ValueError):
        SyntheticTraceConfig(value_period=0)


def test_stats_identical_across_representations():
    """The single-pass columnar/chunked fast paths must be observationally
    identical to the per-record reference loop — same dataclass, field
    for field — on a workload exercising every instruction class."""
    from dataclasses import asdict

    from repro.trace import (
        as_columnar,
        dumps_trace_chunked,
        loads_trace_chunked,
    )

    records = generate_synthetic_trace(
        SyntheticTraceConfig(length=3_000, load_every=5, branch_every=7,
                             branch_taken_bias=0.6, seed=9)
    )
    reference = asdict(compute_stats(records))
    assert asdict(compute_stats(as_columnar(records))) == reference
    chunked = loads_trace_chunked(dumps_trace_chunked(records, 400))
    assert asdict(compute_stats(chunked)) == reference


def test_stats_streaming_is_bounded(monkeypatch):
    """compute_stats on a ChunkedTrace must not materialize the trace:
    at most the LRU window of chunks may ever be resident."""
    from repro.trace import dumps_trace_chunked, loads_trace_chunked
    from repro.trace.columnar import ChunkedTrace

    records = generate_synthetic_trace(SyntheticTraceConfig(length=2_000))
    chunked = loads_trace_chunked(dumps_trace_chunked(records, 250))
    seen = []
    original = ChunkedTrace.chunk

    def watching(self, index):
        result = original(self, index)
        seen.append(self.loaded_chunks)
        return result

    monkeypatch.setattr(ChunkedTrace, "chunk", watching)
    compute_stats(chunked)
    assert seen  # the fast path really went chunk by chunk
    assert all(len(loaded) <= 2 for loaded in seen)
