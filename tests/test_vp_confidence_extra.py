"""Tests for the alternative confidence estimators (paper Section 3.6)."""

import pytest

from repro.vp.confidence import (
    HistoryConfidenceEstimator,
    ResettingConfidenceEstimator,
    SaturatingConfidenceEstimator,
)


class TestSaturating:
    def test_survives_a_single_miss(self):
        """The defining difference from resetting counters."""
        saturating = SaturatingConfidenceEstimator(counter_bits=3)
        resetting = ResettingConfidenceEstimator(counter_bits=3)
        pc = 0x1000
        for __ in range(7):
            saturating.update(pc, True)
            resetting.update(pc, True)
        saturating.update(pc, False)
        resetting.update(pc, False)
        assert saturating.counter(pc) == 6  # stepped down
        assert resetting.counter(pc) == 0  # reset
        saturating.update(pc, True)
        assert saturating.confident(pc, True)
        assert not resetting.confident(pc, True)

    def test_threshold(self):
        estimator = SaturatingConfidenceEstimator(counter_bits=3, threshold=4)
        pc = 0x1000
        for __ in range(4):
            estimator.update(pc, True)
        assert estimator.confident(pc, True)

    def test_down_step(self):
        estimator = SaturatingConfidenceEstimator(counter_bits=3, down_step=4)
        pc = 0x1000
        for __ in range(7):
            estimator.update(pc, True)
        estimator.update(pc, False)
        assert estimator.counter(pc) == 3

    def test_saturation_bounds(self):
        estimator = SaturatingConfidenceEstimator(counter_bits=2)
        pc = 0x1000
        for __ in range(10):
            estimator.update(pc, True)
        assert estimator.counter(pc) == 3
        for __ in range(10):
            estimator.update(pc, False)
        assert estimator.counter(pc) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SaturatingConfidenceEstimator(counter_bits=0)
        with pytest.raises(ValueError):
            SaturatingConfidenceEstimator(threshold=0)
        with pytest.raises(ValueError):
            SaturatingConfidenceEstimator(threshold=99)
        with pytest.raises(ValueError):
            SaturatingConfidenceEstimator(down_step=0)


class TestHistory:
    def test_confident_after_clean_window(self):
        estimator = HistoryConfidenceEstimator(history_bits=4)
        pc = 0x1000
        for __ in range(3):
            estimator.update(pc, True)
        assert not estimator.confident(pc, True)  # window not yet clean
        estimator.update(pc, True)
        assert estimator.confident(pc, True)

    def test_one_miss_blocks_until_aged_out(self):
        estimator = HistoryConfidenceEstimator(history_bits=3)
        pc = 0x1000
        for __ in range(3):
            estimator.update(pc, True)
        estimator.update(pc, False)
        assert not estimator.confident(pc, True)
        estimator.update(pc, True)
        estimator.update(pc, True)
        assert not estimator.confident(pc, True)  # miss still in window
        estimator.update(pc, True)
        assert estimator.confident(pc, True)  # aged out

    def test_cold_entries_not_confident(self):
        assert not HistoryConfidenceEstimator().confident(0x1000, True)

    def test_validation(self):
        with pytest.raises(ValueError):
            HistoryConfidenceEstimator(history_bits=0)


def test_scheme_sweep_shapes():
    from repro.harness.sweeps import confidence_scheme_sweep

    points = confidence_scheme_sweep(
        max_instructions=1200, benchmarks=["m88ksim"]
    )
    by_label = {p.label: p for p in points}
    assert set(by_label) == {
        "resetting (paper)", "saturating", "history", "oracle",
    }
    # the oracle bounds everyone and never misspeculates
    assert by_label["oracle"].detail["_misspeculation_rate"] == 0.0
    best_real = max(
        p.speedup for label, p in by_label.items() if label != "oracle"
    )
    assert by_label["oracle"].speedup >= best_real - 0.02
    # saturating trades accuracy for coverage vs resetting
    assert (
        by_label["saturating"].detail["_misspeculation_rate"]
        >= by_label["resetting (paper)"].detail["_misspeculation_rate"]
    )
