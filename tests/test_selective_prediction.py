"""Selective value prediction and predictor-port tests."""

import pytest

from repro.core.model import GREAT_MODEL
from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_trace
from repro.programs.suite import kernel


@pytest.fixture(scope="module")
def trace():
    return kernel("m88ksim").trace(max_instructions=2500)


def _run(trace, **overrides):
    config = ProcessorConfig(issue_width=8, window_size=48, **overrides)
    return run_trace(trace, config, GREAT_MODEL, confidence="R",
                     update_timing="I")


class TestPredictClasses:
    def test_loads_only_predicts_only_loads(self, trace):
        result = _run(trace, predict_classes="loads")
        load_count = sum(1 for r in trace if r.is_load)
        assert 0 < result.counters.predictions <= load_count

    def test_all_predicts_every_register_writer(self, trace):
        result = _run(trace, predict_classes="all")
        writers = sum(1 for r in trace if r.writes_register)
        # complete-path dispatches predict exactly the eligible instructions
        assert result.counters.predictions == writers

    def test_alu_excludes_loads(self, trace):
        alu_result = _run(trace, predict_classes="alu")
        all_result = _run(trace, predict_classes="all")
        assert 0 < alu_result.counters.predictions < (
            all_result.counters.predictions
        )

    def test_long_latency_superset_of_loads(self, trace):
        ll = _run(trace, predict_classes="long-latency")
        loads = _run(trace, predict_classes="loads")
        assert ll.counters.predictions >= loads.counters.predictions

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="predict_classes"):
            ProcessorConfig(4, 24, predict_classes="branches")


class TestVpPorts:
    def test_port_limit_reduces_predictions(self, trace):
        limited = _run(trace, vp_ports=1)
        unlimited = _run(trace, vp_ports=0)
        assert limited.counters.predictions < unlimited.counters.predictions

    def test_more_ports_monotone_predictions(self, trace):
        counts = [
            _run(trace, vp_ports=p).counters.predictions for p in (1, 2, 4)
        ]
        assert counts == sorted(counts)

    def test_negative_ports_rejected(self):
        with pytest.raises(ValueError, match="vp_ports"):
            ProcessorConfig(4, 24, vp_ports=-1)


def test_registry_has_selective_and_ports():
    from repro.harness.experiments import EXPERIMENTS

    assert "abl-selective" in EXPERIMENTS
    assert "abl-ports" in EXPERIMENTS
