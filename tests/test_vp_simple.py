"""Last-value, stride and hybrid predictor tests."""

from repro.vp.hybrid import HybridPredictor
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import StridePredictor


class TestLastValue:
    def test_predicts_previous_value(self):
        predictor = LastValuePredictor()
        predictor.train(0x1000, 42)
        assert predictor.predict(0x1000) == 42

    def test_cold_predicts_zero(self):
        assert LastValuePredictor().predict(0x1000) == 0

    def test_speculative_update_visible(self):
        predictor = LastValuePredictor()
        predictor.train(0x1000, 5)
        predictor.speculate(0x1000, 9)
        assert predictor.predict(0x1000) == 9
        predictor.train(0x1000, 7)  # retirement corrects
        assert predictor.predict(0x1000) == 7


class TestStride:
    def test_learns_stride(self):
        predictor = StridePredictor()
        for value in (10, 13, 16, 19):
            predictor.train(0x1000, value)
        assert predictor.predict(0x1000) == 22

    def test_two_delta_hysteresis(self):
        predictor = StridePredictor()
        for value in (10, 13, 16):
            predictor.train(0x1000, value)
        # one-off glitch must not retrain the stride
        predictor.train(0x1000, 100)
        predictor.train(0x1000, 103)  # delta 3 again
        assert predictor.predict(0x1000) == 106

    def test_stride_change_after_confirmation(self):
        predictor = StridePredictor()
        for value in (10, 13, 16):
            predictor.train(0x1000, value)
        for value in (20, 25, 30):  # stride 5, confirmed twice
            predictor.train(0x1000, value)
        assert predictor.predict(0x1000) == 35

    def test_constant_sequence(self):
        predictor = StridePredictor()
        for __ in range(3):
            predictor.train(0x1000, 8)
        assert predictor.predict(0x1000) == 8

    def test_speculative_advance(self):
        predictor = StridePredictor()
        for value in (10, 13, 16):
            predictor.train(0x1000, value)
        p1 = predictor.predict(0x1000)
        assert p1 == 19
        predictor.speculate(0x1000, p1)
        assert predictor.predict(0x1000) == 22  # extrapolates past in-flight


class TestHybrid:
    def test_chooser_picks_stride_for_counting(self):
        predictor = HybridPredictor()
        for i in range(0, 60, 3):
            prediction = predictor.predict(0x1000)
            predictor.train(0x1000, i)
        assert predictor.predict(0x1000) == 60

    def test_chooser_picks_context_for_periodic(self):
        predictor = HybridPredictor()
        # note: small-value sequences can collide in the FCM shift-XOR
        # hash (e.g. [5,9,2,7]); these values hash collision-free
        values = [10, 20, 30, 40]
        for __ in range(8):
            for value in values:
                predictor.predict(0x1000)
                predictor.train(0x1000, value)
        correct = 0
        for value in values:
            if predictor.predict(0x1000) == value:
                correct += 1
            predictor.train(0x1000, value)
        assert correct >= 3

    def test_delayed_timing_round_trip(self):
        predictor = HybridPredictor()
        for value in (4, 8, 12):
            predictor.train(0x1000, value)
        prediction = predictor.predict(0x1000)
        token = predictor.speculate(0x1000, prediction)
        predictor.train(0x1000, 16, token)
        assert predictor.predict(0x1000) in (16, 20)  # components updated
