"""Confidence estimator tests."""

import pytest

from repro.vp.confidence import ResettingConfidenceEstimator
from repro.vp.fixed import AlwaysConfident, ConfidentForPCs, FixedValuePredictor
from repro.vp.oracle import OracleConfidence


class TestResettingCounters:
    def test_confident_only_at_maximum(self):
        estimator = ResettingConfidenceEstimator(counter_bits=3)
        pc = 0x1000
        for i in range(7):
            assert not estimator.confident(pc, True)
            estimator.update(pc, True)
        assert estimator.confident(pc, True)
        assert estimator.counter(pc) == 7

    def test_incorrect_resets_to_zero(self):
        estimator = ResettingConfidenceEstimator(counter_bits=3)
        pc = 0x1000
        for __ in range(7):
            estimator.update(pc, True)
        estimator.update(pc, False)
        assert estimator.counter(pc) == 0
        assert not estimator.confident(pc, True)

    def test_counter_saturates(self):
        estimator = ResettingConfidenceEstimator(counter_bits=2)
        for __ in range(10):
            estimator.update(0x1000, True)
        assert estimator.counter(0x1000) == 3

    def test_ground_truth_is_ignored(self):
        estimator = ResettingConfidenceEstimator()
        assert estimator.confident(0x1000, True) == estimator.confident(
            0x1000, False
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ResettingConfidenceEstimator(table_bits=0)
        with pytest.raises(ValueError):
            ResettingConfidenceEstimator(counter_bits=0)


class TestOracle:
    def test_tracks_ground_truth_exactly(self):
        oracle = OracleConfidence()
        assert oracle.confident(0x1000, True)
        assert not oracle.confident(0x1000, False)

    def test_update_is_noop(self):
        oracle = OracleConfidence()
        oracle.update(0x1000, False)
        assert oracle.confident(0x1000, True)


def test_breakdown_recording():
    estimator = OracleConfidence()
    estimator.record(confident=True, correct=True)  # CH
    estimator.record(confident=False, correct=True)  # CL
    estimator.record(confident=True, correct=False)  # IH
    estimator.record(confident=False, correct=False)  # IL
    stats = estimator.stats
    assert (
        stats.correct_high,
        stats.correct_low,
        stats.incorrect_high,
        stats.incorrect_low,
    ) == (1, 1, 1, 1)
    fractions = stats.fractions()
    assert fractions == {"CH": 0.25, "CL": 0.25, "IH": 0.25, "IL": 0.25}
    assert stats.total == 4


class TestScriptedHelpers:
    def test_fixed_predictor(self):
        predictor = FixedValuePredictor({0x1000: 5})
        assert predictor.predict(0x1000) == 5
        assert predictor.predict(0x2000) == 0xDEADBEEF
        predictor.train(0x1000, 9)  # no-op
        assert predictor.predict(0x1000) == 5

    def test_always_confident(self):
        assert AlwaysConfident().confident(0x1, False)

    def test_confident_for_pcs(self):
        estimator = ConfidentForPCs({0x1000})
        assert estimator.confident(0x1000, False)
        assert not estimator.confident(0x2000, True)
