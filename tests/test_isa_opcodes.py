"""Unit tests for opcode/opclass definitions."""

from repro.isa.opcodes import (
    FORMAT_BY_OPCODE,
    INSTRUCTION_BYTES,
    OPCLASS_BY_OPCODE,
    OPCODE_BY_CODE,
    InstrFormat,
    OpClass,
    Opcode,
)


def test_every_opcode_has_format_and_class():
    for op in Opcode:
        assert op in FORMAT_BY_OPCODE, op
        assert op in OPCLASS_BY_OPCODE or op is Opcode.J, op
        assert isinstance(op.opclass, OpClass)
        assert isinstance(op.format, InstrFormat)


def test_opcode_codes_are_unique_and_stable():
    codes = [op.code for op in Opcode]
    assert len(codes) == len(set(codes))
    for op in Opcode:
        assert OPCODE_BY_CODE[op.code] is op


def test_memory_opclasses():
    assert Opcode.LD.opclass is OpClass.LOAD
    assert Opcode.SW.opclass is OpClass.STORE
    assert OpClass.LOAD.is_memory and OpClass.STORE.is_memory
    assert not OpClass.IALU.is_memory


def test_control_opclasses():
    assert Opcode.BEQ.opclass is OpClass.BRANCH
    assert Opcode.J.opclass is OpClass.JUMP
    assert Opcode.JR.opclass is OpClass.IJUMP
    for cls in (OpClass.BRANCH, OpClass.JUMP, OpClass.IJUMP):
        assert cls.is_control
    assert not OpClass.LOAD.is_control


def test_register_writers():
    assert Opcode.ADD.writes_register
    assert Opcode.LD.writes_register
    assert Opcode.JAL.writes_register
    assert Opcode.JALR.writes_register
    assert not Opcode.SD.writes_register
    assert not Opcode.BEQ.writes_register
    assert not Opcode.J.writes_register
    assert not Opcode.JR.writes_register
    assert not Opcode.NOP.writes_register
    assert not Opcode.HALT.writes_register


def test_instruction_size_is_fixed():
    assert INSTRUCTION_BYTES == 8


def test_latency_classes_partition_cleanly():
    simple = {op for op, cls in OPCLASS_BY_OPCODE.items() if cls is OpClass.IALU}
    assert Opcode.ADD in simple and Opcode.SLTI in simple
    assert Opcode.MUL not in simple and Opcode.FDIV not in simple
