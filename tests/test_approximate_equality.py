"""Approximate-equality (Section 3.3 extension) tests."""

import pytest

from repro.core.model import GREAT_MODEL
from repro.engine.config import ProcessorConfig
from repro.engine.pipeline import PipelineSimulator
from repro.engine.sim import run_trace
from repro.harness.figure1 import chain_trace
from repro.programs.suite import kernel
from repro.vp.fixed import ConfidentForPCs, FixedValuePredictor
from repro.vp.update_timing import UpdateTiming


def _run_chain(ignore_bits, prediction_offset):
    """Predict instruction 1 of the chain off by ``prediction_offset``."""
    trace = chain_trace()
    config = ProcessorConfig(4, 24, equality_ignore_low_bits=ignore_bits)
    sim = PipelineSimulator(
        trace,
        config,
        GREAT_MODEL,
        predictor=FixedValuePredictor({0x1000: 1 + prediction_offset}),
        confidence=ConfidentForPCs({0x1000}),
        update_timing=UpdateTiming.IMMEDIATE,
    )
    return sim.run()


def test_strict_equality_rejects_near_miss():
    counters = _run_chain(ignore_bits=0, prediction_offset=1)
    assert counters.misspeculations == 1
    assert counters.approximate_matches == 0


def test_approximate_equality_accepts_near_miss():
    # prediction differs only in the low bit; 4-bit tolerance accepts it
    counters = _run_chain(ignore_bits=4, prediction_offset=1)
    assert counters.misspeculations == 0
    assert counters.approximate_matches == 1
    assert counters.reissues == 0


def test_approximate_equality_still_rejects_distant_miss():
    counters = _run_chain(ignore_bits=4, prediction_offset=1 << 10)
    assert counters.misspeculations == 1


def test_exact_match_not_counted_as_approximate():
    counters = _run_chain(ignore_bits=8, prediction_offset=0)
    assert counters.approximate_matches == 0
    assert counters.misspeculations == 0


def test_validation():
    with pytest.raises(ValueError, match="equality_ignore_low_bits"):
        ProcessorConfig(4, 24, equality_ignore_low_bits=64)
    with pytest.raises(ValueError, match="equality_ignore_low_bits"):
        ProcessorConfig(4, 24, equality_ignore_low_bits=-1)


def test_tolerance_raises_effective_accuracy_on_kernel():
    trace = kernel("compress").trace(max_instructions=2500)
    strict = run_trace(
        trace, ProcessorConfig(8, 48), GREAT_MODEL,
        confidence="R", update_timing="I",
    )
    loose = run_trace(
        trace, ProcessorConfig(8, 48, equality_ignore_low_bits=16),
        GREAT_MODEL, confidence="R", update_timing="I",
    )
    assert loose.counters.prediction_accuracy > (
        strict.counters.prediction_accuracy
    )
    assert loose.counters.approximate_matches > 0


def test_sweep_and_registry():
    from repro.harness.experiments import EXPERIMENTS
    from repro.harness.sweeps import approximate_equality_sweep

    points = approximate_equality_sweep(
        max_instructions=1000, benchmarks=["compress"], low_bits=(0, 16)
    )
    assert points[0].label == "strict (paper)"
    assert points[1].speedup >= points[0].speedup - 0.02
    assert "abl-equality" in EXPERIMENTS
