"""Processor configuration and functional-unit latency tests."""

import pytest

from repro.engine.config import PAPER_CONFIGS, ProcessorConfig, paper_config
from repro.engine.funits import LATENCY_BY_CLASS, execution_latency
from repro.isa.opcodes import OpClass


def test_defaults_follow_issue_width():
    config = ProcessorConfig(issue_width=8, window_size=48)
    assert config.fetch_width == 8
    assert config.dispatch_width == 8
    assert config.retire_width == 8
    assert config.dcache_ports == 4  # half the issue width


def test_paper_configs():
    labels = [c.label for c in PAPER_CONFIGS]
    assert labels == ["4/24", "8/48", "16/96"]
    assert paper_config("8/48").window_size == 48
    with pytest.raises(KeyError):
        paper_config("2/12")


def test_dcache_ports_minimum_one():
    config = ProcessorConfig(issue_width=1, window_size=4)
    assert config.dcache_ports == 1


def test_validation():
    with pytest.raises(ValueError):
        ProcessorConfig(issue_width=0, window_size=8)
    with pytest.raises(ValueError):
        ProcessorConfig(issue_width=8, window_size=4)  # window < width
    with pytest.raises(ValueError):
        ProcessorConfig(issue_width=4, window_size=24, retire_width=0)
    with pytest.raises(ValueError):
        ProcessorConfig(issue_width=4, window_size=24, dcache_ports=0)


def test_with_overrides():
    config = ProcessorConfig(issue_width=4, window_size=24)
    changed = config.with_overrides(window_size=32)
    assert changed.window_size == 32
    assert changed.issue_width == 4


def test_funit_latencies_match_paper_bands():
    """Simple integer = 1 cycle; complex/FP between 2 and 24 cycles."""
    assert execution_latency(OpClass.IALU) == 1
    for cls in (OpClass.IMUL, OpClass.IDIV, OpClass.FADD, OpClass.FMUL, OpClass.FDIV):
        assert 2 <= execution_latency(cls) <= 24, cls
    assert execution_latency(OpClass.FDIV) == 24
    assert set(LATENCY_BY_CLASS) == set(OpClass)
