"""Columnar trace plane: struct-of-arrays traces, the VSRT v3 format,
and zero-copy distribution to sweep workers.

Three layers under test, mirroring docs/PERFORMANCE.md ("Columnar trace
plane"):

* :class:`repro.trace.columnar.ColumnarTrace` — row-view equivalence
  with ``list[TraceRecord]``, lazy memoized materialization, packing
  limits;
* the v3 binary format (:mod:`repro.trace.binary`) — round trips
  including the edges (empty trace, ``dest_reg=None``, 64-bit maxima),
  truncation/corruption rejection, and the cache's regenerate-on-corrupt
  fallback;
* the parallel harness's zero-copy staging — golden equivalence of
  columnar vs record-list inputs at ``jobs=1`` and ``jobs>1``, and the
  ``REPRO_TRACE_STRICT`` proof that a warm ``jobs=4`` sweep performs
  zero per-worker trace materializations.
"""

from __future__ import annotations

import pytest

from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode
from repro.programs.suite import KernelSpec, kernel
from repro.trace import cache as trace_cache
from repro.trace.binary import (
    BinaryTraceError,
    dumps_trace_binary_v3,
    loads_trace_binary_v3,
    read_trace_binary_v3,
    v3_layout,
    write_trace_binary_v3,
)
from repro.trace.columnar import (
    ColumnarTrace,
    ColumnarTraceError,
    as_columnar,
)
from repro.trace.record import TraceRecord

_MAX64 = (1 << 64) - 1

_ALU = list(Opcode)[0]


def _rec(
    seq,
    pc,
    opcode=_ALU,
    src_regs=(),
    dest_reg=None,
    dest_value=None,
    mem_addr=None,
    mem_size=None,
    branch_taken=None,
    next_pc=None,
):
    if next_pc is None:
        next_pc = pc + INSTRUCTION_BYTES
    return TraceRecord(
        seq, pc, opcode, src_regs, dest_reg, dest_value,
        mem_addr, mem_size, branch_taken, next_pc,
    )


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    directory = tmp_path / "traces"
    monkeypatch.setenv(trace_cache.ENV_VAR, str(directory))
    return directory


@pytest.fixture()
def capture_counter(monkeypatch):
    # Counts functional-simulation captures through either entry point:
    # the in-memory KernelSpec.trace and the streaming KernelSpec.iter_trace
    # (the default capture path since chunked storage landed).
    calls = {"count": 0}
    original_trace = KernelSpec.trace
    original_iter = KernelSpec.iter_trace

    def counting_trace(self, max_instructions=None):
        calls["count"] += 1
        return original_trace(self, max_instructions)

    def counting_iter(self, max_instructions=None):
        calls["count"] += 1
        return original_iter(self, max_instructions)

    monkeypatch.setattr(KernelSpec, "trace", counting_trace)
    monkeypatch.setattr(KernelSpec, "iter_trace", counting_iter)
    return calls


# -- ColumnarTrace row views ----------------------------------------------


def test_columnar_round_trips_kernel_trace():
    records = kernel("compress").trace(max_instructions=800)
    columnar = ColumnarTrace.from_records(records)
    assert len(columnar) == len(records)
    assert columnar == records
    # Engine-critical derived fields survive columnarization.
    assert [r.dest_fold for r in columnar] == [r.dest_fold for r in records]
    assert [r.exec_latency for r in columnar] == [
        r.exec_latency for r in records
    ]
    assert [r.is_ctrl for r in columnar] == [r.is_ctrl for r in records]


def test_columnar_rows_are_lazy_and_memoized():
    records = kernel("compress").trace(max_instructions=100)
    columnar = ColumnarTrace.from_records(records)
    assert columnar.materialized_rows == 0
    first = columnar[3]
    assert columnar.materialized_rows == 1  # only the touched row
    assert columnar[3] is first  # memoized, not rebuilt
    rows = columnar.rows()
    assert columnar.materialized_rows == len(records)
    assert rows[3] is first


def test_columnar_sequence_protocol():
    records = kernel("compress").trace(max_instructions=50)
    columnar = as_columnar(records)
    assert as_columnar(columnar) is columnar  # identity on columnar input
    assert columnar[-1] == records[-1]
    assert columnar[2:5] == records[2:5]
    assert list(iter(columnar)) == records
    with pytest.raises(IndexError):
        columnar[len(records)]


def test_columnar_rejects_unpackable_records():
    with pytest.raises(ColumnarTraceError, match="source registers"):
        ColumnarTrace.from_records([_rec(0, 0, src_regs=(1, 2, 3, 4))])
    with pytest.raises(ColumnarTraceError, match="srcs column"):
        ColumnarTrace.from_records([_rec(0, 0, src_regs=(300,))])


# -- v3 round trips, including the edges ----------------------------------


def test_v3_empty_trace_round_trip():
    blob = dumps_trace_binary_v3([])
    loaded = loads_trace_binary_v3(blob)
    assert len(loaded) == 0
    assert loaded == []


def test_v3_none_dest_round_trip():
    records = [_rec(0, 0x1000, src_regs=(5,))]  # no destination register
    loaded = loads_trace_binary_v3(dumps_trace_binary_v3(records))
    assert loaded[0].dest_reg is None
    assert loaded[0].dest_value is None
    assert loaded == records


def test_v3_64bit_maxima_round_trip():
    # The fixed-width columns must carry full-range u64 payloads (the
    # varint v2 format handled these too; v3 must not truncate them).
    records = [
        _rec(
            0,
            (_MAX64 & ~7) - INSTRUCTION_BYTES,
            src_regs=(255,),
            dest_reg=254,
            dest_value=_MAX64,
            next_pc=_MAX64 & ~7,
        ),
        _rec(1, 0, dest_reg=1, dest_value=0),
    ]
    loaded = loads_trace_binary_v3(dumps_trace_binary_v3(records))
    assert loaded[0].dest_value == _MAX64
    assert loaded[0].pc == (_MAX64 & ~7) - INSTRUCTION_BYTES
    assert loaded[0].next_pc == _MAX64 & ~7
    assert loaded == records


def test_v3_kernel_trace_file_round_trip(tmp_path):
    records = kernel("gcc").trace(max_instructions=400)
    path = tmp_path / "trace.vsrt3"
    size = write_trace_binary_v3(records, path)
    assert path.stat().st_size == size
    for use_mmap in (True, False):
        loaded = read_trace_binary_v3(path, use_mmap=use_mmap)
        assert isinstance(loaded, ColumnarTrace)
        assert loaded == records


def test_v3_layout_is_aligned_and_exact():
    offsets, total = v3_layout(7)
    assert all(offset % 8 == 0 for offset in offsets.values())
    blob = dumps_trace_binary_v3(kernel("compress").trace(max_instructions=7))
    assert len(blob) == total


def test_v3_bad_magic_rejected():
    with pytest.raises(BinaryTraceError, match="magic"):
        loads_trace_binary_v3(b"NOPE" + bytes(32))


def test_v3_truncated_rejected():
    blob = dumps_trace_binary_v3(kernel("compress").trace(max_instructions=20))
    with pytest.raises(BinaryTraceError, match="header"):
        loads_trace_binary_v3(blob[:10])
    with pytest.raises(BinaryTraceError, match="size mismatch"):
        loads_trace_binary_v3(blob[:-8])
    with pytest.raises(BinaryTraceError, match="size mismatch"):
        loads_trace_binary_v3(blob + bytes(8))


def test_v3_truncated_file_rejected_and_unmapped(tmp_path):
    path = tmp_path / "clipped.vsrt3"
    blob = dumps_trace_binary_v3(kernel("compress").trace(max_instructions=20))
    path.write_bytes(blob[:-16])
    with pytest.raises(BinaryTraceError):
        read_trace_binary_v3(path)
    path.write_bytes(b"")
    with pytest.raises(BinaryTraceError, match="header"):
        read_trace_binary_v3(path)


def test_v3_unknown_opcode_rejected():
    blob = bytearray(dumps_trace_binary_v3([_rec(0, 0)]))
    offsets, _total = v3_layout(1)
    used = {op.code for op in Opcode}
    blob[offsets["opcode"]] = next(c for c in range(256) if c not in used)
    with pytest.raises(BinaryTraceError, match="opcode"):
        loads_trace_binary_v3(bytes(blob))


def test_v3_mmap_load_is_zero_parse(tmp_path):
    path = tmp_path / "trace.vsrt3"
    write_trace_binary_v3(kernel("compress").trace(max_instructions=200), path)
    loaded = read_trace_binary_v3(path)
    # Buffer-backed and nothing materialized until a row is touched.
    assert "buffer-backed" in repr(loaded)
    assert loaded.materialized_rows == 0
    assert loaded[0].seq == 0
    assert loaded.materialized_rows == 1


# -- cache fallback on corruption -----------------------------------------


def test_corrupt_v3_cache_entry_falls_back_to_regeneration(
    cache_dir, capture_counter
):
    """A clipped/garbage cache entry must be a miss that deletes the file
    and re-captures — never a crash, never a wrong trace."""
    first = trace_cache.cached_trace("compress", 60)
    assert capture_counter["count"] == 1
    path = trace_cache.trace_path("compress", kernel("compress").source, 60)
    good = path.read_bytes()

    # Note the middle one carries a plausible v3 magic but a body that
    # cannot match any record count's exact file size.
    for corruption in (good[:-24], b"VSRT\x03" + b"\x00" * 21, b"junk"):
        path.write_bytes(corruption)
        regenerated = trace_cache.cached_trace("compress", 60)
        assert regenerated == first
    assert capture_counter["count"] == 4  # one re-capture per corruption
    # The final regeneration rewrote a valid entry: warm again.
    trace_cache.cached_trace("compress", 60)
    assert capture_counter["count"] == 4


# -- golden equivalence: columnar input, serial and fanned ----------------


def test_engine_results_identical_on_columnar_and_record_traces():
    from repro.core.model import GOOD_MODEL, GREAT_MODEL
    from repro.engine.config import ProcessorConfig
    from repro.engine.sim import run_baseline, run_trace

    config = ProcessorConfig(issue_width=4, window_size=24)
    records = kernel("perl").trace(max_instructions=600)
    columnar = as_columnar(records)
    runs = [
        lambda t: run_baseline(t, config),
        lambda t: run_trace(t, config, GREAT_MODEL),
        lambda t: run_trace(t, config, GOOD_MODEL),
    ]
    for run in runs:
        from_records = run(records)
        from_columnar = run(columnar)
        assert from_columnar.counters == from_records.counters
        assert from_columnar.cycles == from_records.cycles


def test_sweep_golden_identical_serial_vs_fanned(cache_dir, monkeypatch):
    """The zero-copy staging (mmap'd cache entries into 4 workers) must
    be invisible in the counters: bit-identical to the inline path."""
    from repro.core.model import GREAT_MODEL
    from repro.engine.config import ProcessorConfig
    from repro.harness import parallel
    from repro.harness.parallel import SimJob, run_jobs

    monkeypatch.setattr(parallel, "_TRACE_CACHE", {})
    config = ProcessorConfig(issue_width=4, window_size=24)
    jobs = []
    for name in ("compress", "perl"):
        jobs.append(SimJob(name, config, None, 500))
        jobs.append(SimJob(name, config, GREAT_MODEL, 500))
    serial = run_jobs(jobs, jobs=1)
    fanned = run_jobs(jobs, jobs=4)
    assert [r.counters for r in serial] == [r.counters for r in fanned]
    assert [r.cycles for r in serial] == [r.cycles for r in fanned]


def test_sweep_golden_identical_with_shared_memory_staging(monkeypatch):
    """With the disk cache off, staging uses multiprocessing shared
    memory; results must still match the inline path exactly."""
    from repro.core.model import GREAT_MODEL
    from repro.engine.config import ProcessorConfig
    from repro.harness import parallel

    monkeypatch.setenv(trace_cache.ENV_VAR, "off")
    monkeypatch.setattr(parallel, "_TRACE_CACHE", {})
    config = ProcessorConfig(issue_width=4, window_size=24)
    jobs = [
        parallel.SimJob("compress", config, None, 400),
        parallel.SimJob("compress", config, GREAT_MODEL, 400),
    ]
    serial = parallel.run_jobs(jobs, jobs=1)
    monkeypatch.setattr(parallel, "_TRACE_CACHE", {})
    fanned = parallel.run_jobs(jobs, jobs=2)
    assert [r.counters for r in serial] == [r.counters for r in fanned]


# -- strict mode: warm sweeps perform zero worker materializations --------


def test_strict_env_parsing(monkeypatch):
    from repro.harness.parallel import strict_no_capture

    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv("REPRO_TRACE_STRICT", value)
        assert strict_no_capture(), value
    for value in ("", "0", "off", "no"):
        monkeypatch.setenv("REPRO_TRACE_STRICT", value)
        assert not strict_no_capture(), value
    monkeypatch.delenv("REPRO_TRACE_STRICT")
    assert not strict_no_capture()


def test_strict_worker_refuses_capture(monkeypatch):
    from repro.harness import parallel

    monkeypatch.setattr(parallel, "_WORKER_STRICT", True)
    monkeypatch.setattr(parallel, "_TRACE_CACHE", {})
    monkeypatch.setattr(parallel, "_TRACE_HANDLES", {})
    with pytest.raises(RuntimeError, match="REPRO_TRACE_STRICT"):
        parallel._trace_for("compress", 100)


def test_warm_jobs4_sweep_zero_worker_materializations(
    cache_dir, capture_counter, monkeypatch
):
    """Acceptance: a warm ``jobs=4`` sweep serves every worker from the
    staged mmap handles.  ``REPRO_TRACE_STRICT`` turns any worker-side
    fallback to functional capture into a hard failure, so the sweep
    *completing* (with golden counters) is the zero-materialization
    proof; the capture counter pins the parent side to the single cold
    warm-up capture."""
    from repro.core.model import GOOD_MODEL, GREAT_MODEL
    from repro.engine.config import ProcessorConfig
    from repro.harness import parallel
    from repro.harness.parallel import SimJob, run_jobs

    monkeypatch.setattr(parallel, "_TRACE_CACHE", {})
    config = ProcessorConfig(issue_width=4, window_size=24)
    jobs = [
        SimJob("compress", config, model, 500)
        for model in (None, GREAT_MODEL, GOOD_MODEL)
    ] * 2
    serial = run_jobs(jobs, jobs=1)  # cold: captures once, fills cache
    assert capture_counter["count"] == 1

    monkeypatch.setenv("REPRO_TRACE_STRICT", "1")
    fanned = run_jobs(jobs, jobs=4)
    assert capture_counter["count"] == 1  # no parent-side re-capture
    assert [r.counters for r in fanned] == [r.counters for r in serial]
    assert [r.cycles for r in fanned] == [r.cycles for r in serial]
