"""The parallel fan-out must never change a result.

Every test here pins the tentpole invariant of
:mod:`repro.harness.parallel`: a grid run with N worker processes is
bit-identical to the same grid run inline, because jobs are stateless
descriptions, factories build collaborators fresh per job, and merge is
by submission index.
"""

import os
import pickle
import signal
from concurrent.futures.process import BrokenProcessPool
from functools import partial

import pytest

from repro.core.model import GREAT_MODEL
from repro.engine.config import ProcessorConfig
from repro.harness.parallel import (
    SimJob,
    effective_jobs,
    resolve_backend,
    run_grid,
    run_jobs,
)

_CONFIG = ProcessorConfig(issue_width=4, window_size=24)
_LIMIT = 800


def _kamikaze_confidence(flag_path: str):
    """Confidence factory that SIGKILLs its worker the first time it is
    built (simulating an OOM-killed worker mid-job), then behaves
    normally — the flag file is the 'already died once' marker."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    from repro.vp.confidence import ResettingConfidenceEstimator

    return ResettingConfidenceEstimator()


def _always_kill_confidence():
    os.kill(os.getpid(), signal.SIGKILL)


def _tiny_grid() -> list[SimJob]:
    jobs = []
    for name in ("compress", "perl"):
        jobs.append(SimJob(name, _CONFIG, None, _LIMIT))
        jobs.append(SimJob(name, _CONFIG, GREAT_MODEL, _LIMIT))
    return jobs


class TestSimJob:
    def test_picklable(self):
        job = SimJob("compress", _CONFIG, GREAT_MODEL, _LIMIT)
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job

    def test_task_seed_content_derived_and_stable(self):
        a = SimJob("compress", _CONFIG, None, _LIMIT)
        b = SimJob("compress", _CONFIG, GREAT_MODEL, _LIMIT)
        c = SimJob("perl", _CONFIG, None, _LIMIT)
        assert a.task_seed() == b.task_seed()  # same workload, same seed
        assert a.task_seed() != c.task_seed()
        assert SimJob("perl", _CONFIG, None, _LIMIT, seed=5).task_seed() == 5


class TestEffectiveJobs:
    def test_clamps_to_task_count(self):
        assert effective_jobs(8, 3) == 3
        assert effective_jobs(2, 3) == 2

    def test_zero_and_none_mean_all_cores(self):
        assert effective_jobs(0, 100) >= 1
        assert effective_jobs(None, 100) >= 1

    def test_empty_grid(self):
        assert effective_jobs(4, 0) == 1


class TestMergeExactness:
    def test_workers_match_inline(self):
        grid = _tiny_grid()
        inline = run_jobs(grid, jobs=1)
        fanned = run_jobs(grid, jobs=2)
        assert [r.counters for r in inline] == [r.counters for r in fanned]
        assert [r.cycles for r in inline] == [r.cycles for r in fanned]

    def test_results_positionally_aligned(self):
        grid = _tiny_grid()
        results = run_jobs(grid, jobs=2)
        # Baseline runs retire the same instruction count as the model
        # runs of the same benchmark: alignment is (base, model) pairs.
        for base, model in zip(results[::2], results[1::2]):
            assert base.counters.retired == model.counters.retired
            assert base.model_name is None  # baseline run
            assert model.model_name == "great"

    def test_run_grid_keys_in_input_order(self):
        names = ["perl", "compress"]
        results = run_grid(
            names, _CONFIG, None, max_instructions=_LIMIT, jobs=2
        )
        assert list(results) == names


class TestBackendResolution:
    def test_defaults_to_local(self):
        assert resolve_backend(None) == "local"
        assert resolve_backend("local") == "local"

    def test_env_var_selects_cluster(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "cluster")
        assert resolve_backend() == "cluster"
        assert resolve_backend("local") == "local"  # argument wins

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            resolve_backend("bogus")


class TestWorkerDeathRecovery:
    def test_pool_survives_worker_sigkill(self, tmp_path):
        flag = tmp_path / "died-once"
        grid = [
            SimJob(
                "compress",
                _CONFIG,
                GREAT_MODEL,
                _LIMIT,
                confidence=partial(_kamikaze_confidence, str(flag)),
            ),
            SimJob("perl", _CONFIG, GREAT_MODEL, _LIMIT),
        ]
        fanned = run_jobs(grid, jobs=2)
        assert flag.exists()  # the SIGKILL really happened
        # The flag now exists, so the inline reference run is benign and
        # must match the fanned run that survived a dead worker.
        inline = run_jobs(grid, jobs=1)
        assert [r.counters for r in fanned] == [r.counters for r in inline]
        assert [r.cycles for r in fanned] == [r.cycles for r in inline]

    def test_attempt_budget_bounds_retries(self):
        grid = [
            SimJob(
                "compress",
                _CONFIG,
                GREAT_MODEL,
                _LIMIT,
                confidence=_always_kill_confidence,
            ),
            SimJob("perl", _CONFIG, GREAT_MODEL, _LIMIT),
        ]
        with pytest.raises(BrokenProcessPool, match="lost its worker"):
            run_jobs(grid, jobs=2, max_attempts=2)


class TestStagingCleanup:
    def test_no_leaked_segments_on_staging_failure(self, monkeypatch):
        import multiprocessing.shared_memory as shm_module

        from repro.harness.parallel import _stage_traces
        from repro.trace import binary as trace_binary

        # Disable the disk cache so staging takes the shared-memory path.
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")

        created: list[str] = []
        real_shared_memory = shm_module.SharedMemory

        class RecordingSharedMemory(real_shared_memory):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                if kwargs.get("create"):
                    created.append(self.name)

        monkeypatch.setattr(shm_module, "SharedMemory", RecordingSharedMemory)

        real_dumps = trace_binary.dumps_trace_binary_v3
        calls = {"n": 0}

        def failing_dumps(trace):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("injected staging failure")
            return real_dumps(trace)

        monkeypatch.setattr(trace_binary, "dumps_trace_binary_v3", failing_dumps)

        grid = [
            SimJob("compress", _CONFIG, None, _LIMIT),
            SimJob("perl", _CONFIG, None, _LIMIT),
        ]
        with pytest.raises(RuntimeError, match="injected staging failure"):
            _stage_traces(grid)
        # The first benchmark's segment existed when the second failed;
        # the error path must have released and unlinked it.
        assert len(created) == 1
        for name in created:
            with pytest.raises(FileNotFoundError):
                real_shared_memory(name=name)


class TestDuplicateJobDedup:
    """A grid repeating a point (ablation run sets share their baseline
    jobs) must execute each distinct key once — on every backend, store
    configured or not — with results scattered back in submission order.
    """

    def test_duplicates_execute_once_and_preserve_submission_order(
        self, monkeypatch
    ):
        import repro.harness.parallel as parallel

        base = SimJob("compress", _CONFIG, None, _LIMIT)
        vp = SimJob("compress", _CONFIG, GREAT_MODEL, _LIMIT)
        other = SimJob("perl", _CONFIG, None, _LIMIT)
        # The same base job appears three times, interleaved — the
        # shape an ablation run set flattens to.
        grid = [base, vp, base, other, base]

        executed: list[SimJob] = []
        real_execute = parallel._execute

        def counting_execute(job):
            executed.append(job)
            return real_execute(job)

        monkeypatch.setattr(parallel, "_execute", counting_execute)
        results = run_jobs(grid)

        assert [job.benchmark for job in executed] == [
            "compress", "compress", "perl"
        ]
        assert len(executed) == 3  # distinct keys, not submissions
        # Submission order preserved: every occurrence of a duplicated
        # job gets the shared result at its own position.
        assert len(results) == len(grid)
        assert results[0] == results[2] == results[4]
        assert results[1].model_name == "great"
        assert results[3].counters == real_execute(other).counters

    def test_deduped_results_match_undeduped_inline_run(self):
        vp = SimJob("perl", _CONFIG, GREAT_MODEL, _LIMIT)
        base = SimJob("perl", _CONFIG, None, _LIMIT)
        duplicated = run_jobs([vp, base, vp, vp])
        plain = run_jobs([vp, base])
        assert duplicated[0].counters == plain[0].counters
        assert duplicated[1].counters == plain[1].counters
        assert duplicated[2].counters == duplicated[0].counters
        assert duplicated[3].counters == duplicated[0].counters


class TestSweepEquality:
    def test_sweep_identical_across_worker_counts(self):
        from repro.harness.sweeps import invalidation_scheme_sweep

        kw = dict(max_instructions=_LIMIT, benchmarks=["perl"])
        assert invalidation_scheme_sweep(**kw, jobs=1) == (
            invalidation_scheme_sweep(**kw, jobs=3)
        )

    def test_stateful_factories_fresh_per_job(self):
        # The confidence sweep passes estimator *factories*; a leaked
        # shared estimator would make inline and fanned runs diverge.
        from repro.harness.sweeps import confidence_strength_sweep

        kw = dict(
            max_instructions=_LIMIT,
            benchmarks=["compress", "perl"],
            counter_bits=(2,),
        )
        assert confidence_strength_sweep(**kw, jobs=1) == (
            confidence_strength_sweep(**kw, jobs=2)
        )
