"""Engine edge-case tests: structural stalls, wrong-path interactions,
scheme coverage on real kernels, determinism across schemes."""

import pytest

from repro.core.latency import GREAT_LATENCIES
from repro.core.model import GREAT_MODEL, SpeculativeExecutionModel
from repro.core.variables import (
    BranchResolution,
    InvalidationScheme,
    MemoryResolution,
    ModelVariables,
    SelectionPolicy,
    VerificationScheme,
    WakeupPolicy,
)
from repro.engine.config import ProcessorConfig
from repro.engine.pipeline import PipelineSimulator
from repro.engine.sim import run_baseline, run_trace
from repro.isa.opcodes import Opcode
from repro.programs.suite import kernel
from repro.trace.record import TraceRecord


@pytest.fixture(scope="module")
def m88ksim_trace():
    return kernel("m88ksim").trace(max_instructions=3000)


@pytest.fixture(scope="module")
def go_trace():
    return kernel("go").trace(max_instructions=3000)


def test_tiny_window_still_completes(m88ksim_trace):
    config = ProcessorConfig(issue_width=2, window_size=2)
    result = run_baseline(m88ksim_trace, config)
    assert result.counters.retired == 3000
    assert result.counters.window_peak <= 2


def test_window_size_monotonic(m88ksim_trace):
    cycles = []
    for window in (4, 16, 48):
        config = ProcessorConfig(issue_width=4, window_size=window)
        cycles.append(run_baseline(m88ksim_trace, config).cycles)
    assert cycles[0] >= cycles[1] >= cycles[2]


def test_wrong_path_occupancy_costs_cycles(go_trace):
    """Wrong-path instructions compete for resources: disabling the model
    (stall fetch instead) must not be slower."""
    with_wp = run_baseline(
        go_trace, ProcessorConfig(4, 24, model_wrong_path=True)
    )
    without_wp = run_baseline(
        go_trace, ProcessorConfig(4, 24, model_wrong_path=False)
    )
    assert with_wp.counters.dispatched_wrong_path > 0
    assert without_wp.counters.dispatched_wrong_path == 0
    assert with_wp.counters.retired == without_wp.counters.retired == 3000


@pytest.mark.parametrize("scheme", list(VerificationScheme))
def test_all_verification_schemes_complete_on_kernel(m88ksim_trace, scheme):
    model = SpeculativeExecutionModel(
        f"great-{scheme.value}",
        ModelVariables(verification=scheme),
        GREAT_LATENCIES,
    )
    result = run_trace(
        m88ksim_trace,
        ProcessorConfig(4, 24),
        model,
        confidence="R",
        update_timing="I",
    )
    assert result.counters.retired == 3000


@pytest.mark.parametrize("scheme", list(InvalidationScheme))
def test_all_invalidation_schemes_complete_on_kernel(m88ksim_trace, scheme):
    model = SpeculativeExecutionModel(
        f"great-{scheme.value}",
        ModelVariables(invalidation=scheme),
        GREAT_LATENCIES,
    )
    result = run_trace(
        m88ksim_trace,
        ProcessorConfig(4, 24),
        model,
        confidence="R",
        update_timing="D",
    )
    assert result.counters.retired == 3000


@pytest.mark.parametrize("policy", list(WakeupPolicy))
@pytest.mark.parametrize("selection", list(SelectionPolicy))
def test_wakeup_selection_combinations(m88ksim_trace, policy, selection):
    model = SpeculativeExecutionModel(
        f"g-{policy.value}-{selection.value}",
        ModelVariables(wakeup=policy, selection=selection),
        GREAT_LATENCIES,
    )
    result = run_trace(
        m88ksim_trace,
        ProcessorConfig(4, 24),
        model,
        confidence="R",
        update_timing="I",
    )
    assert result.counters.retired == 3000


def test_speculative_resolution_policies_complete(go_trace):
    from dataclasses import replace

    variables = ModelVariables(
        branch_resolution=BranchResolution.SPECULATIVE_ALLOWED,
        memory_resolution=MemoryResolution.SPECULATIVE_ALLOWED,
    )
    latencies = replace(
        GREAT_LATENCIES,
        verification_to_branch=0,
        verification_addr_to_mem_access=0,
    )
    model = SpeculativeExecutionModel("spec-resolve", variables, latencies)
    result = run_trace(
        go_trace,
        ProcessorConfig(8, 48),
        model,
        confidence="R",
        update_timing="I",
    )
    assert result.counters.retired == 3000


def test_kernel_run_deterministic(m88ksim_trace):
    config = ProcessorConfig(8, 48)

    def once():
        return run_trace(
            m88ksim_trace, config, GREAT_MODEL, confidence="R",
            update_timing="D",
        ).counters

    a, b = once(), once()
    assert (a.cycles, a.reissues, a.misspeculations) == (
        b.cycles, b.reissues, b.misspeculations
    )


def test_store_only_and_load_only_traces():
    stores = [
        TraceRecord(i, 0x1000 + 8 * i, Opcode.SD, (29, 4), None, None,
                    0x300000 + 8 * i, 8, None, 0x1008 + 8 * i)
        for i in range(20)
    ]
    result = run_baseline(stores, ProcessorConfig(4, 8))
    assert result.counters.retired == 20
    loads = [
        TraceRecord(i, 0x1000 + 8 * i, Opcode.LD, (29,), 8 + i % 8, i,
                    0x300000 + 8 * i, 8, None, 0x1008 + 8 * i)
        for i in range(20)
    ]
    result = run_baseline(loads, ProcessorConfig(4, 8))
    assert result.counters.retired == 20


def test_single_instruction_trace():
    trace = [TraceRecord(0, 0x1000, Opcode.HALT, (), next_pc=0x1008)]
    result = run_baseline(trace, ProcessorConfig(4, 8))
    assert result.counters.retired == 1
    assert result.cycles >= 1


def test_fdiv_heavy_trace_matches_latency():
    # serial chain of FDIVs: cycles ~ 24 per link
    trace = []
    for i in range(5):
        srcs = (8,) if i else (4,)
        trace.append(
            TraceRecord(i, 0x1000 + 8 * i, Opcode.FDIV, srcs, 8, i + 1,
                        next_pc=0x1008 + 8 * i)
        )
    result = run_baseline(trace, ProcessorConfig(4, 8))
    assert result.cycles >= 5 * 24


def test_counters_consistency_on_kernel(m88ksim_trace):
    result = run_trace(
        m88ksim_trace,
        ProcessorConfig(8, 48),
        GREAT_MODEL,
        confidence="R",
        update_timing="D",
    )
    c = result.counters
    assert c.retired == 3000
    assert c.dispatched >= c.retired
    assert c.issued >= c.retired  # every retired instruction issued >= once
    assert c.predictions_correct <= c.predictions
    assert c.speculated <= c.predictions
    assert (
        c.correct_high + c.correct_low + c.incorrect_high + c.incorrect_low
        == c.predictions
    )
    assert c.misspeculations == c.incorrect_high
