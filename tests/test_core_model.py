"""Speculative-execution model and variables tests."""

import pytest

from repro.core.latency import GREAT_LATENCIES, LatencyModel
from repro.core.model import (
    GOOD_MODEL,
    GREAT_MODEL,
    SUPER_MODEL,
    SpeculativeExecutionModel,
    named_models,
)
from repro.core.variables import (
    PAPER_VARIABLES,
    BranchResolution,
    InvalidationScheme,
    MemoryResolution,
    ModelVariables,
    SelectionPolicy,
    VerificationScheme,
    WakeupPolicy,
)


def test_paper_variables_defaults():
    assert PAPER_VARIABLES.wakeup is WakeupPolicy.VALID_OR_SPECULATIVE
    assert PAPER_VARIABLES.selection is SelectionPolicy.PAPER
    assert PAPER_VARIABLES.branch_resolution is BranchResolution.VALID_ONLY
    assert PAPER_VARIABLES.memory_resolution is MemoryResolution.VALID_ONLY
    assert PAPER_VARIABLES.invalidation is InvalidationScheme.SELECTIVE_PARALLEL
    assert PAPER_VARIABLES.verification is VerificationScheme.PARALLEL_NETWORK


def test_named_models():
    models = named_models()
    assert set(models) == {"super", "great", "good"}
    assert models["great"] is GREAT_MODEL
    assert SUPER_MODEL.variables is PAPER_VARIABLES
    assert GOOD_MODEL.latencies.exec_to_verification == 1


def test_irrelevant_branch_latency_rejected():
    """Section 4: irrelevant latencies must not silently linger."""
    variables = ModelVariables(
        branch_resolution=BranchResolution.SPECULATIVE_ALLOWED
    )
    with pytest.raises(ValueError, match="verification_to_branch"):
        SpeculativeExecutionModel("bad", variables, GREAT_LATENCIES)
    # with the latency zeroed it is accepted
    ok = SpeculativeExecutionModel(
        "ok",
        variables,
        LatencyModel(verification_to_branch=0, verification_addr_to_mem_access=1),
    )
    assert ok.name == "ok"


def test_irrelevant_memory_latency_rejected():
    variables = ModelVariables(
        memory_resolution=MemoryResolution.SPECULATIVE_ALLOWED
    )
    with pytest.raises(ValueError, match="verification_addr_to_mem_access"):
        SpeculativeExecutionModel("bad", variables, GREAT_LATENCIES)


def test_describe_renders_both_tables():
    text = GREAT_MODEL.describe()
    assert "model variables" in text
    assert "latency variables" in text
    assert "valid-or-speculative" in text
    assert "Invalidation - Reissue" in text


def test_variables_table_rows():
    rows = PAPER_VARIABLES.table_rows()
    assert len(rows) == 6
    assert rows[0] == ("WakeUp", "valid-or-speculative")
