"""ABL-L: per-latency-variable sensitivity around the great model.

Reproduces the paper's core conclusion: performance has *non-uniform*
sensitivity to the latency events — verification latency is critical,
while (under realistic confidence) invalidation and reissue latency barely
matter.
"""

from repro.harness.render import render_table
from repro.harness.sweeps import latency_sensitivity_sweep

from conftest import BENCH_BENCHMARKS, BENCH_TRACE_LIMIT


def test_bench_latency_sensitivity(benchmark):
    points = benchmark.pedantic(
        lambda: latency_sensitivity_sweep(
            max_instructions=BENCH_TRACE_LIMIT,
            benchmarks=BENCH_BENCHMARKS,
            values=(0, 1, 2),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(
        ("Variable setting", "HM Speedup"),
        [(p.label, p.speedup) for p in points],
        title="ABL-L: latency sensitivity (around great, I/R)",
    ))
    by_label = {p.label: p.speedup for p in points}

    def drop(prefix):
        return by_label[f"{prefix}=0"] - by_label[f"{prefix}=2"]

    verification_drop = drop("Exec-Eq-Verification")
    invalidation_drop = drop("Exec-Eq-Invalidation")
    reissue_drop = drop("Invalidation-Reissue")
    # fast verification is essential...
    assert verification_drop > 0.01
    # ...but with rare misspeculation, slow invalidation/reissue is
    # acceptable (the paper's headline sensitivity asymmetry)
    assert verification_drop > invalidation_drop + 0.005
    assert verification_drop > reissue_drop + 0.005
    # each latency is monotone: more cycles never help
    for prefix in (
        "Exec-Eq-Verification",
        "Verification-Branch",
        "Verification-FreeRes",
    ):
        assert by_label[f"{prefix}=0"] >= by_label[f"{prefix}=2"] - 0.01
