"""ABL-V: Section 3.2 verification-scheme comparison."""

from repro.harness.render import render_table
from repro.harness.sweeps import verification_scheme_sweep

from conftest import BENCH_BENCHMARKS, BENCH_TRACE_LIMIT


def test_bench_verification_schemes(benchmark):
    points = benchmark.pedantic(
        lambda: verification_scheme_sweep(
            max_instructions=BENCH_TRACE_LIMIT, benchmarks=BENCH_BENCHMARKS
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(
        ("Scheme", "HM Speedup"),
        [(p.label, p.speedup) for p in points],
        title="ABL-V: verification schemes (great latencies)",
    ))
    by_label = {p.label: p.speedup for p in points}
    # the flattened network is the highest-potential scheme (Section 3.2)
    assert by_label["parallel-network"] >= by_label["hierarchical"] - 1e-9
    assert by_label["parallel-network"] >= by_label["retirement-based"] - 1e-9
    # retirement-based verification suffers its pitfall (a): only the w
    # oldest instructions can validate, holding resources needlessly
    assert by_label["retirement-based"] <= by_label["hierarchical"]
