"""Engine throughput in simulated instructions per second.

Unlike the pytest-benchmark microbenchmarks in ``test_bench_engine.py``,
this module measures the end-to-end quantity the optimisation work is
judged by — simulated instructions retired per CPU-second across the
standard benchmark grid — and records it in ``BENCH_engine_perf.json``
at the repository root so CI can archive the trend (and
``scripts/perf_diff.py`` can diff a fresh run against the committed
record).

Methodology (see docs/PERFORMANCE.md): CPU time via
``time.process_time`` (robust against other tenants of the machine),
best-of-``_REPS`` per grid point, aggregate throughput = total
instructions / sum of per-point best times.  The grid is the
``conftest`` one: three kernels x two configurations x {base, great,
good}.  Cross-engine comparisons (the seed and PR 1 reference blocks)
were measured *paired* — both engines run back-to-back on the same host
in the same time window — because absolute ips numbers drift with host
load and CPU frequency; only paired ratios are meaningful.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

from conftest import BENCH_BENCHMARKS, BENCH_CONFIGS, BENCH_TRACE_LIMIT
from repro.core.model import GOOD_MODEL, GREAT_MODEL, SUPER_MODEL
from repro.engine.sim import run_baseline, run_trace
from repro.harness.parallel import SimJob, run_jobs

_REPS = 3
_OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_perf.json"

#: Seed-engine reference, measured on the development host with the same
#: grid and methodology (best-of-5, paired back-to-back with the current
#: engine in the same time window).  The ratio is only meaningful on
#: comparable hosts — recompute the reference when changing machines.
_SEED_REFERENCE_IPS = 22_093
_SEED_REFERENCE_DATE = "2026-08-05"

#: PR 1 engine reference (bitmask taints + event-driven wakeup), measured
#: paired against the current engine on the development host: interleaved
#: subprocess runs over the full grid, best-of-3 reps per point, best of
#: 3 interleaved rounds.  Keyed by model because the optimisation targets
#: are per-model (the PR 2 acceptance bar is great/good >= 1.25x PR 1).
_PR1_REFERENCE = {
    "commit": "427469b",
    "measured": "2026-08-06",
    "aggregate_ips": {"base": 63_350, "great": 41_517, "good": 40_648},
    "note": (
        "paired interleaved run on the development host; compare only "
        "against numbers measured in the same time window on the same "
        "machine"
    ),
}

#: PR 3 engine reference (latency-event observability baseline the
#: columnar trace plane's engine rework is measured against), measured
#: paired on the development host: alternating single-rep passes over
#: the full grid between the PR 3 worktree and the current tree, taking
#: the per-cell (benchmark x config x model) minimum seconds per side
#: across 12 passes.  Per-cell minima are what make the paired ratio
#: robust to host-throughput drift on minute timescales — means of
#: interleaved rounds were observed swinging +-9% on the same code.
_PR3_REFERENCE = {
    "commit": "7600837",
    "measured": "2026-08-06",
    "aggregate_ips": {"base": 62_354, "great": 48_561, "good": 48_569},
    "note": (
        "paired interleaved run (per-cell min over 12 alternating "
        "passes) on the development host; compare only against numbers "
        "measured in the same time window on the same machine"
    ),
}

#: CI-safe sanity floor: far below any real measurement (the pure-Python
#: seed engine already exceeded 10k ips on a shared single core), so the
#: assertion catches catastrophic regressions, not machine variance.
_MIN_AGGREGATE_IPS = 3_000

_MODELS = (
    ("base", lambda t, c: run_baseline(t, c)),
    ("great", lambda t, c: run_trace(t, c, GREAT_MODEL)),
    ("good", lambda t, c: run_trace(t, c, GOOD_MODEL)),
)


def _git_revision() -> str:
    """Current commit (short hash, ``-dirty`` suffixed), or ``unknown``."""
    root = Path(__file__).resolve().parent.parent
    try:
        revision = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
        if not revision:
            return "unknown"
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, timeout=10,
        ).stdout
        # The record file itself is rewritten by this benchmark run, so
        # its modification must not mark the measurement dirty.
        dirty = [
            line
            for line in status.splitlines()
            if line.strip() and not line.endswith(_OUT_PATH.name)
        ]
        return f"{revision}-dirty" if dirty else revision
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _measure(fn) -> float:
    best = float("inf")
    for _ in range(_REPS):
        start = time.process_time()
        fn()
        best = min(best, time.process_time() - start)
    return best


#: Grid passes per side for the batched-vs-scalar comparison.  The two
#: paths run interleaved (scalar pass, batched pass, repeat) and each
#: side keeps its best pass, for the same reason the PR 3 reference used
#: per-cell minima: paired ratios survive host-throughput drift, means
#: do not.
_BATCHED_REPS = 3

#: CI-safe floor for the batched/scalar grid ratio.  The honest measured
#: grid-level speedup is ~1.1x (see docs/PERFORMANCE.md section 8 for
#: why the per-lane timing core bounds it); the assertion only guards
#: against the batched path becoming dramatically slower than scalar.
_MIN_BATCHED_RATIO = 0.8


def _figure3_grid() -> list[SimJob]:
    """The figure3-shaped bench grid: per config, baselines then every
    (setting x model x benchmark) point — the workload ``run_figure3``
    hands to the batch planner."""
    settings = (("D", "R"), ("I", "R"), ("D", "O"), ("I", "O"))
    models = (GOOD_MODEL, GREAT_MODEL, SUPER_MODEL)
    jobs: list[SimJob] = []
    for config in BENCH_CONFIGS:
        jobs.extend(
            SimJob(n, config, None, BENCH_TRACE_LIMIT)
            for n in BENCH_BENCHMARKS
        )
        for timing, conf in settings:
            for model in models:
                jobs.extend(
                    SimJob(
                        n, config, model, BENCH_TRACE_LIMIT,
                        confidence=conf, update_timing=timing,
                    )
                    for n in BENCH_BENCHMARKS
                )
    return jobs


def _paired_grid_seconds(jobs: list[SimJob]) -> tuple[float, float, bool]:
    """Best-of interleaved whole-grid passes: (scalar, batched, identical)."""
    scalar_results = run_jobs(jobs, 1, batch=1)  # warm traces + wp memo
    batched_results = run_jobs(jobs, 1, batch=0)
    identical = [r.counters for r in scalar_results] == [
        r.counters for r in batched_results
    ]
    scalar_best = batched_best = float("inf")
    for _ in range(_BATCHED_REPS):
        start = time.process_time()
        run_jobs(jobs, 1, batch=1)
        scalar_best = min(scalar_best, time.process_time() - start)
        start = time.process_time()
        run_jobs(jobs, 1, batch=0)
        batched_best = min(batched_best, time.process_time() - start)
    return scalar_best, batched_best, identical


def test_bench_perf_grid(bench_traces):
    points = []
    total_instructions = 0
    total_seconds = 0.0
    model_instructions = {name: 0 for name, _ in _MODELS}
    model_seconds = {name: 0.0 for name, _ in _MODELS}
    for config in BENCH_CONFIGS:
        for model_name, run in _MODELS:
            for name, trace in bench_traces.items():
                seconds = _measure(lambda: run(trace, config))
                instructions = len(trace)
                points.append(
                    {
                        "benchmark": name,
                        "config": config.label,
                        "model": model_name,
                        "instructions": instructions,
                        "best_seconds": round(seconds, 6),
                        "ips": round(instructions / seconds),
                    }
                )
                total_instructions += instructions
                total_seconds += seconds
                model_instructions[model_name] += instructions
                model_seconds[model_name] += seconds

    aggregate_ips = total_instructions / total_seconds
    model_aggregate_ips = {
        name: round(model_instructions[name] / model_seconds[name])
        for name, _ in _MODELS
    }
    report = {
        "generated_by": "benchmarks/test_bench_perf.py",
        "git_revision": _git_revision(),
        "trace_limit": BENCH_TRACE_LIMIT,
        "reps_best_of": _REPS,
        "timer": "time.process_time",
        "points": points,
        "aggregate_ips": round(aggregate_ips),
        "model_aggregate_ips": model_aggregate_ips,
        # Relative cost of simulating speculation: great-model throughput
        # over base throughput on this same run (host effects cancel).
        "great_base_ratio": round(
            model_aggregate_ips["great"] / model_aggregate_ips["base"], 3
        ),
        "seed_reference": {
            "aggregate_ips": _SEED_REFERENCE_IPS,
            "measured": _SEED_REFERENCE_DATE,
            "note": (
                "seed engine on the development host, same grid and "
                "methodology, paired back-to-back run; the ratio below "
                "is host-dependent"
            ),
        },
        "pr1_reference": _PR1_REFERENCE,
        "pr3_reference": _PR3_REFERENCE,
        "speedup_vs_seed_reference": round(
            aggregate_ips / _SEED_REFERENCE_IPS, 2
        ),
    }
    # Carry the paired engine comparisons forward so a grid-only rerun
    # does not drop them from the record; test_bench_perf_batched and
    # test_bench_perf_specialized rewrite them with fresh paired numbers
    # when they run.
    if _OUT_PATH.exists():
        previous = json.loads(_OUT_PATH.read_text())
        for block in ("batched", "specialized", "sampled"):
            if block in previous:
                report[block] = previous[block]
    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    assert aggregate_ips > _MIN_AGGREGATE_IPS
    assert len(points) == len(BENCH_CONFIGS) * len(_MODELS) * len(bench_traces)


def test_bench_perf_batched():
    """Paired batched-vs-scalar grid throughput (PR 6).

    Measures the figure3-shaped bench grid through ``run_jobs`` both
    ways — scalar per-point (``batch=1``, the PR 5 engine's path,
    unchanged by the batched engine) and fully batched (``batch=0``) —
    in interleaved passes, and records the paired ratios in the report's
    ``batched`` block.  Two aggregates: the full grid (half its lanes
    are delayed-update-timing, whose value-prediction state is not
    replayable — docs/PERFORMANCE.md section 8), and the
    immediate-timing subset where the recorded-column replay applies.
    """
    grid = _figure3_grid()
    scalar_s, batched_s, identical = _paired_grid_seconds(grid)
    itiming = [j for j in grid if j.model is None or j.update_timing == "I"]
    it_scalar_s, it_batched_s, it_identical = _paired_grid_seconds(itiming)

    batched_block = {
        "grid_lanes": len(grid),
        "scalar_best_seconds": round(scalar_s, 6),
        "batched_best_seconds": round(batched_s, 6),
        "grid_speedup": round(scalar_s / batched_s, 3),
        "itiming_lanes": len(itiming),
        "itiming_scalar_best_seconds": round(it_scalar_s, 6),
        "itiming_batched_best_seconds": round(it_batched_s, 6),
        "itiming_speedup": round(it_scalar_s / it_batched_s, 3),
        "pr5_reference": {
            "commit": _git_revision(),
            "measured": time.strftime("%Y-%m-%d"),
            "note": (
                "the scalar side IS the PR 5 per-point engine (the "
                "batched engine leaves it untouched), run interleaved "
                "with the batched side in the same time window on the "
                "same host; the speedups above are those paired ratios"
            ),
        },
        "note": (
            "grid-level gain is bounded by the per-lane timing core: "
            "the shared front end is ~12-15% of a lane and recorded "
            "value-prediction replay only applies to immediate-timing "
            "lanes (delayed timing trains at retire, which is "
            "lane-timing-dependent) — see docs/PERFORMANCE.md section 8"
        ),
    }

    report = json.loads(_OUT_PATH.read_text()) if _OUT_PATH.exists() else {}
    report["batched"] = batched_block
    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    assert identical and it_identical  # bit-identity while we have both
    assert scalar_s / batched_s > _MIN_BATCHED_RATIO


#: CI-safe floor for the specialized/generic grid ratio.  The honest
#: measured grid-level speedup is modest (docs/PERFORMANCE.md section 9:
#: the generic engine already hoists every knob to locals, so folding
#: them buys little per cycle); the assertion only guards against the
#: specialized path becoming dramatically slower than generic.
_MIN_SPECIALIZED_RATIO = 0.8


def _paired_specialized_seconds(jobs: list[SimJob]) -> tuple[float, float, bool]:
    """Best-of interleaved whole-grid passes: (generic, specialized,
    identical).  The warm-up pair both checks bit-identity and builds
    every specialized class, so the timed passes measure the steady
    state (codegen is a once-per-fingerprint cost the in-process cache
    amortizes across a sweep)."""
    from repro.engine.specialize import SPECIALIZE_ENV_VAR

    def _generic_pass():
        os.environ[SPECIALIZE_ENV_VAR] = "0"
        try:
            return run_jobs(jobs, 1, batch=1)
        finally:
            del os.environ[SPECIALIZE_ENV_VAR]

    generic_results = _generic_pass()
    specialized_results = run_jobs(jobs, 1, batch=1)
    identical = [r.counters for r in generic_results] == [
        r.counters for r in specialized_results
    ]
    generic_best = specialized_best = float("inf")
    for _ in range(_BATCHED_REPS):
        start = time.process_time()
        _generic_pass()
        generic_best = min(generic_best, time.process_time() - start)
        start = time.process_time()
        run_jobs(jobs, 1, batch=1)
        specialized_best = min(specialized_best, time.process_time() - start)
    return generic_best, specialized_best, identical


def test_bench_perf_specialized():
    """Paired specialized-vs-generic grid throughput (PR 7).

    Measures the figure3-shaped bench grid through ``run_jobs`` both
    ways on the scalar per-point path — generic
    (``REPRO_ENGINE_SPECIALIZE=0``) and config-specialized (the
    default) — in interleaved passes, and records the paired ratio in
    the report's ``specialized`` block.  Classes are pre-built by the
    bit-identity warm-up, so the ratio is the steady-state one a long
    sweep sees, not the codegen-dominated cold start.
    """
    grid = _figure3_grid()
    generic_s, specialized_s, identical = _paired_specialized_seconds(grid)

    specialized_block = {
        "grid_lanes": len(grid),
        "generic_best_seconds": round(generic_s, 6),
        "specialized_best_seconds": round(specialized_s, 6),
        "grid_speedup": round(generic_s / specialized_s, 3),
        "pr6_reference": {
            "commit": _git_revision(),
            "measured": time.strftime("%Y-%m-%d"),
            "note": (
                "the generic side IS the PR 6 per-point engine "
                "(specialization subclasses it and leaves it untouched), "
                "run interleaved with the specialized side in the same "
                "time window on the same host; the speedup above is that "
                "paired ratio"
            ),
        },
        "note": (
            "grid-level gain is bounded by what folding can remove: the "
            "generic engine already hoists every config knob to "
            "per-call locals, so specialization eliminates cheap local "
            "branch tests, not attribute loads — see docs/PERFORMANCE.md "
            "section 9 for the ceiling analysis"
        ),
    }

    report = json.loads(_OUT_PATH.read_text()) if _OUT_PATH.exists() else {}
    report["specialized"] = specialized_block
    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    assert identical  # bit-identity while we have both result sets
    assert generic_s / specialized_s > _MIN_SPECIALIZED_RATIO


#: Acceptance bars for phase-sampled simulation (the PR 9 streaming
#: plane): at least this wall-clock speedup at no more than this CPI
#: error, on every long workload measured below.  Unlike the paired
#: engine ratios these are not host-comparisons — error is
#: host-independent and the speedup is a same-process ratio whose
#: sampled side does a near-fixed amount of work, so it *grows* with
#: trace length; 10x at ~2M records is conservative.
_MIN_SAMPLED_SPEEDUP = 10.0
_MAX_SAMPLED_CPI_ERROR = 0.02

#: Long phase-structured synthetic workloads for the sampled-vs-exact
#: record: each phase segment spans 4 chunks of 16k records and the
#: schedule recurs, so representatives are phase-interior chunks with
#: same-phase warm-up — the workload shape SimPoint-style sampling is
#: built for.  Phases are load-free with fully-biased branches, keeping
#: per-phase CPI stationary (the paper-model dcache and branch
#: predictor otherwise warm over millions of records, which no sampler
#: without full state checkpointing can track).
_SAMPLED_CHUNK = 16_000
_SAMPLED_PHASES = 3
_SAMPLED_WORKLOADS = {
    "phased_alu": dict(
        phases=(
            dict(chain_length=2, branch_every=8, seed=101),
            dict(chain_length=6, branch_every=24, seed=202),
            dict(chain_length=4, branch_every=12, seed=303),
        ),
        rounds=10,  # 3 phases x 64k records x 10 rounds = 1.92M
    ),
    "phased_mix": dict(
        phases=(
            dict(chain_length=8, branch_every=32, seed=404),
            dict(chain_length=3, branch_every=6, seed=505),
            dict(chain_length=5, branch_every=10, seed=606),
        ),
        rounds=11,  # 2.112M records
    ),
}


def _sampled_workload(spec: dict):
    """Build one long phased workload as a chunked (v4) trace, so phase
    fingerprints come from the capture-time index for free."""
    from repro.trace.binary import dumps_trace_chunked, loads_trace_chunked
    from repro.trace.synthetic import (
        PhasedSyntheticConfig,
        SyntheticTraceConfig,
        iter_phased_synthetic_trace,
    )

    config = PhasedSyntheticConfig(
        phases=tuple(
            SyntheticTraceConfig(
                length=4 * _SAMPLED_CHUNK,
                load_every=0,
                branch_taken_bias=1.0,
                **phase,
            )
            for phase in spec["phases"]
        ),
        schedule=tuple(range(3)) * spec["rounds"],
    )
    records = list(iter_phased_synthetic_trace(config))
    return loads_trace_chunked(dumps_trace_chunked(records, _SAMPLED_CHUNK))


def test_bench_perf_sampled():
    """Sampled-vs-exact CPI and wall-clock on long workloads (PR 9).

    For each workload, runs the exact baseline engine over the full
    trace and the phase-sampled estimator (representative chunk per
    phase, warm-up prefix, alternates for error bars), and records the
    paired numbers in the report's ``sampled`` block.  The acceptance
    bars are the streaming plane's headline claim: >= 10x wall-clock at
    <= 2% CPI error.
    """
    from repro.engine.config import ProcessorConfig
    from repro.sampling import compare_sampled_exact

    config = ProcessorConfig()
    workloads = {}
    for name, spec in _SAMPLED_WORKLOADS.items():
        trace = _sampled_workload(spec)
        workloads[name] = compare_sampled_exact(
            trace, config, phases=_SAMPLED_PHASES
        )
        del trace

    sampled_block = {
        "chunk_records": _SAMPLED_CHUNK,
        "phases": _SAMPLED_PHASES,
        "engine": "baseline",
        "workloads": {
            name: {
                key: (round(value, 6) if isinstance(value, float) else value)
                for key, value in result.items()
            }
            for name, result in workloads.items()
        },
        "note": (
            "sampled mode is an explicitly labeled estimate (exact mode "
            "is untouched and remains the default); the sampled side "
            "simulates a near-fixed record count, so its speedup scales "
            "linearly with trace length beyond the ~2M records measured "
            "here — see docs/PERFORMANCE.md section 14"
        ),
    }

    report = json.loads(_OUT_PATH.read_text()) if _OUT_PATH.exists() else {}
    report["sampled"] = sampled_block
    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    for name, result in workloads.items():
        assert result["cpi_error"] <= _MAX_SAMPLED_CPI_ERROR, (name, result)
        assert result["speedup"] >= _MIN_SAMPLED_SPEEDUP, (name, result)


def test_bench_perf_report_readable():
    """The written report round-trips and has the fields CI consumes."""
    if not _OUT_PATH.exists():  # ordering safety if run alone
        return
    report = json.loads(_OUT_PATH.read_text())
    assert report["aggregate_ips"] > 0
    assert {
        "points",
        "git_revision",
        "model_aggregate_ips",
        "great_base_ratio",
        "seed_reference",
        "pr1_reference",
        "pr3_reference",
        "speedup_vs_seed_reference",
        "batched",
        "specialized",
        "sampled",
    } <= set(report)
    assert set(report["model_aggregate_ips"]) == {"base", "great", "good"}
    batched = report["batched"]
    assert batched["grid_speedup"] > 0
    assert batched["itiming_speedup"] > 0
    assert "pr5_reference" in batched
    specialized = report["specialized"]
    assert specialized["grid_speedup"] > 0
    assert "pr6_reference" in specialized
    sampled = report["sampled"]
    assert len(sampled["workloads"]) >= 2
    for result in sampled["workloads"].values():
        assert result["cpi_error"] <= _MAX_SAMPLED_CPI_ERROR
        assert result["speedup"] >= _MIN_SAMPLED_SPEEDUP
