"""Engine throughput in simulated instructions per second.

Unlike the pytest-benchmark microbenchmarks in ``test_bench_engine.py``,
this module measures the end-to-end quantity the optimisation work is
judged by — simulated instructions retired per CPU-second across the
standard benchmark grid — and records it in ``BENCH_engine_perf.json``
at the repository root so CI can archive the trend.

Methodology (see docs/PERFORMANCE.md): CPU time via
``time.process_time`` (robust against other tenants of the machine),
best-of-``_REPS`` per grid point, aggregate throughput = total
instructions / sum of per-point best times.  The grid is the
``conftest`` one: three kernels x two configurations x {base, great}.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import BENCH_CONFIGS, BENCH_TRACE_LIMIT
from repro.core.model import GREAT_MODEL
from repro.engine.sim import run_baseline, run_trace

_REPS = 3
_OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_perf.json"

#: Seed-engine reference, measured on the development host with the same
#: grid and methodology (best-of-5, paired back-to-back with the current
#: engine in the same time window).  The ratio is only meaningful on
#: comparable hosts — recompute the reference when changing machines.
_SEED_REFERENCE_IPS = 22_093
_SEED_REFERENCE_DATE = "2026-08-05"

#: CI-safe sanity floor: far below any real measurement (the pure-Python
#: seed engine already exceeded 10k ips on a shared single core), so the
#: assertion catches catastrophic regressions, not machine variance.
_MIN_AGGREGATE_IPS = 3_000


def _measure(fn) -> float:
    best = float("inf")
    for _ in range(_REPS):
        start = time.process_time()
        fn()
        best = min(best, time.process_time() - start)
    return best


def test_bench_perf_grid(bench_traces):
    points = []
    total_instructions = 0
    total_seconds = 0.0
    for config in BENCH_CONFIGS:
        for model_name, run in (
            ("base", lambda t, c: run_baseline(t, c)),
            ("great", lambda t, c: run_trace(t, c, GREAT_MODEL)),
        ):
            for name, trace in bench_traces.items():
                seconds = _measure(lambda: run(trace, config))
                instructions = len(trace)
                points.append(
                    {
                        "benchmark": name,
                        "config": config.label,
                        "model": model_name,
                        "instructions": instructions,
                        "best_seconds": round(seconds, 6),
                        "ips": round(instructions / seconds),
                    }
                )
                total_instructions += instructions
                total_seconds += seconds

    aggregate_ips = total_instructions / total_seconds
    report = {
        "generated_by": "benchmarks/test_bench_perf.py",
        "trace_limit": BENCH_TRACE_LIMIT,
        "reps_best_of": _REPS,
        "timer": "time.process_time",
        "points": points,
        "aggregate_ips": round(aggregate_ips),
        "seed_reference": {
            "aggregate_ips": _SEED_REFERENCE_IPS,
            "measured": _SEED_REFERENCE_DATE,
            "note": (
                "seed engine on the development host, same grid and "
                "methodology, paired back-to-back run; the ratio below "
                "is host-dependent"
            ),
        },
        "speedup_vs_seed_reference": round(
            aggregate_ips / _SEED_REFERENCE_IPS, 2
        ),
    }
    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    assert aggregate_ips > _MIN_AGGREGATE_IPS
    assert len(points) == len(BENCH_CONFIGS) * 2 * len(bench_traces)


def test_bench_perf_report_readable():
    """The written report round-trips and has the fields CI consumes."""
    if not _OUT_PATH.exists():  # ordering safety if run alone
        return
    report = json.loads(_OUT_PATH.read_text())
    assert report["aggregate_ips"] > 0
    assert {"points", "seed_reference", "speedup_vs_seed_reference"} <= set(report)
