"""Engine-throughput microbenchmarks: simulation speed itself.

These are classic pytest-benchmark measurements (multiple rounds) of the
library's hot paths, so performance regressions in the simulator are
visible independently of the paper-artifact regenerations.
"""

from repro.core.model import GREAT_MODEL
from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_baseline, run_trace
from repro.trace.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.vp.context import ContextValuePredictor


def _workload():
    return generate_synthetic_trace(
        SyntheticTraceConfig(length=2000, predictable_fraction=0.7, seed=5)
    )


def test_bench_baseline_engine_throughput(benchmark):
    trace = _workload()
    config = ProcessorConfig(issue_width=8, window_size=48)
    result = benchmark(lambda: run_baseline(trace, config))
    assert result.counters.retired == len(trace)


def test_bench_speculative_engine_throughput(benchmark):
    trace = _workload()
    config = ProcessorConfig(issue_width=8, window_size=48)
    result = benchmark(
        lambda: run_trace(
            trace, config, GREAT_MODEL, confidence="R", update_timing="D"
        )
    )
    assert result.counters.retired == len(trace)


def test_bench_predictor_lookup_train(benchmark):
    predictor = ContextValuePredictor()
    values = [(0x1000 + 8 * (i % 64), (i * 7) % 1000) for i in range(512)]

    def run():
        for pc, value in values:
            predictor.predict(pc)
            predictor.train(pc, value)

    benchmark(run)


def test_bench_functional_simulator(benchmark):
    from repro.programs.suite import kernel

    spec = kernel("compress")

    def run():
        return spec.trace(max_instructions=4000)

    trace = benchmark(run)
    assert len(trace) >= 4000 or trace[-1].opcode.mnemonic == "halt"


def test_bench_cache_access(benchmark):
    from repro.mem.hierarchy import make_paper_hierarchy

    hierarchy = make_paper_hierarchy()
    addresses = [(i * 1664525 + 13) % (1 << 22) for i in range(2048)]

    def run():
        total = 0
        for address in addresses:
            total += hierarchy.data_access(address, is_write=False)
        return total

    assert benchmark(run) > 0
