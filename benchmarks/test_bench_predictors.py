"""ABL-P: value-predictor comparison under the great model (extension)."""

from repro.harness.render import render_table
from repro.harness.sweeps import predictor_sweep

from conftest import BENCH_BENCHMARKS, BENCH_TRACE_LIMIT


def test_bench_predictor_comparison(benchmark):
    points = benchmark.pedantic(
        lambda: predictor_sweep(
            max_instructions=BENCH_TRACE_LIMIT, benchmarks=BENCH_BENCHMARKS
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(
        ("Predictor", "HM Speedup"),
        [(p.label, p.speedup) for p in points],
        title="ABL-P: value predictors (great model, I/R)",
    ))
    by_label = {p.label: p.speedup for p in points}
    # the hybrid should not lose to its weakest component
    assert by_label["hybrid"] >= min(
        by_label["context"], by_label["stride"]
    ) - 0.02
    # every predictor keeps the machine at or above ~base performance under
    # realistic confidence
    for label, value in by_label.items():
        assert value > 0.93, label
