"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one paper artifact (table/figure)
or ablation at a CI-friendly scale — traces are truncated and the
benchmark subset reduced, because the cycle-level engine is pure Python —
and asserts the paper's qualitative *shape* on the result.  EXPERIMENTS.md
records a full-scale run.
"""

from __future__ import annotations

import pytest

from repro.engine.config import ProcessorConfig
from repro.programs.suite import benchmark_suite

#: Workload scale for benchmark runs.
BENCH_TRACE_LIMIT = 2500
BENCH_BENCHMARKS = ["compress", "m88ksim", "perl"]
BENCH_CONFIGS = (
    ProcessorConfig(issue_width=4, window_size=24),
    ProcessorConfig(issue_width=8, window_size=48),
)


@pytest.fixture(scope="session")
def bench_traces():
    """Kernel traces shared by every benchmark module."""
    return {
        spec.name: spec.trace(BENCH_TRACE_LIMIT)
        for spec in benchmark_suite()
        if spec.name in BENCH_BENCHMARKS
    }
