"""FIG1: regenerate the Figure 1 pipeline-execution example."""

from repro.harness.figure1 import render_figure1, run_figure1


def test_bench_figure1(benchmark):
    scenarios = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    print()
    print(render_figure1(scenarios))
    cycles = {s.label: s.cycles for s in scenarios}
    # the paper's reference values
    assert cycles["base"] == 5
    assert cycles["super/correct"] == 3
    assert cycles["great/correct"] == 3
    assert cycles["good/correct"] == 4
    assert cycles["super/incorrect"] == 5
    assert cycles["super/incorrect"] < cycles["great/incorrect"]
    assert cycles["great/incorrect"] < cycles["good/incorrect"] == 7
