"""ABL-I: Section 3.1 invalidation-scheme comparison."""

from repro.harness.render import render_table
from repro.harness.sweeps import invalidation_scheme_sweep

from conftest import BENCH_BENCHMARKS, BENCH_TRACE_LIMIT


def test_bench_invalidation_schemes(benchmark):
    points = benchmark.pedantic(
        lambda: invalidation_scheme_sweep(
            max_instructions=BENCH_TRACE_LIMIT, benchmarks=BENCH_BENCHMARKS
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(
        ("Scheme", "HM Speedup"),
        [(p.label, p.speedup) for p in points],
        title="ABL-I: invalidation schemes (great latencies, real confidence)",
    ))
    by_label = {p.label: p.speedup for p in points}
    # With realistic confidence misspeculation is rare, so the selective
    # schemes are nearly indistinguishable — the paper's conclusion that
    # "when misspeculation is infrequent slow invalidation may be
    # acceptable".
    assert abs(
        by_label["selective-parallel"] - by_label["selective-hierarchical"]
    ) < 0.03
    # Complete invalidation has "smaller but still positive potential".
    assert by_label["complete"] <= by_label["selective-parallel"] + 1e-9
    assert by_label["complete"] > 0.9
