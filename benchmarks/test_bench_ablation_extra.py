"""ABL-R / ABL-CS / ABL-W: resolution policies, confidence schemes, and
width scaling."""

from repro.harness.render import render_table
from repro.harness.sweeps import (
    confidence_scheme_sweep,
    resolution_policy_sweep,
    width_scaling_sweep,
)

from conftest import BENCH_BENCHMARKS, BENCH_TRACE_LIMIT


def _print(points, title):
    print()
    print(render_table(
        ("Point", "HM Speedup"),
        [(p.label, p.speedup) for p in points],
        title=title,
    ))


def test_bench_resolution_policies(benchmark):
    points = benchmark.pedantic(
        lambda: resolution_policy_sweep(
            max_instructions=BENCH_TRACE_LIMIT, benchmarks=BENCH_BENCHMARKS
        ),
        rounds=1,
        iterations=1,
    )
    _print(points, "ABL-R: branch/memory resolution policies")
    by_label = {p.label: p.speedup for p in points}
    # dropping the network wait never hurts under this model's optimism
    # (branch outcomes still only trusted once inputs are valid)
    assert by_label["speculative-both"] >= by_label["valid-only (paper)"] - 0.02
    assert by_label["speculative-branches"] >= by_label["valid-only (paper)"] - 0.02


def test_bench_confidence_schemes(benchmark):
    points = benchmark.pedantic(
        lambda: confidence_scheme_sweep(
            max_instructions=BENCH_TRACE_LIMIT, benchmarks=BENCH_BENCHMARKS
        ),
        rounds=1,
        iterations=1,
    )
    _print(points, "ABL-CS: confidence estimation schemes")
    by_label = {p.label: p for p in points}
    assert by_label["oracle"].detail["_misspeculation_rate"] == 0.0
    # the resetting scheme is the most conservative realistic estimator
    assert (
        by_label["resetting (paper)"].detail["_misspeculation_rate"]
        <= by_label["saturating"].detail["_misspeculation_rate"] + 1e-9
    )


def test_bench_width_scaling(benchmark):
    points = benchmark.pedantic(
        lambda: width_scaling_sweep(
            max_instructions=BENCH_TRACE_LIMIT,
            benchmarks=BENCH_BENCHMARKS,
            widths=(2, 4, 8, 16),
        ),
        rounds=1,
        iterations=1,
    )
    _print(points, "ABL-W: width/window scaling")
    speedups = [p.speedup for p in points]
    # the paper's trend: wider machines benefit more (allow small noise)
    assert speedups[-1] >= speedups[0] - 0.01
    assert max(speedups) == max(speedups[-2:], default=speedups[-1])
