"""FIG4: regenerate the Figure 4 prediction-accuracy breakdown."""

from repro.harness.figure4 import render_figure4, run_figure4

from conftest import BENCH_BENCHMARKS, BENCH_CONFIGS, BENCH_TRACE_LIMIT


def test_bench_figure4(benchmark):
    cells = benchmark.pedantic(
        lambda: run_figure4(
            max_instructions=BENCH_TRACE_LIMIT,
            benchmarks=BENCH_BENCHMARKS,
            configs=BENCH_CONFIGS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure4(cells))
    by_key = {(c.config_label, c.timing): c.breakdown for c in cells}
    for (config, timing), breakdown in by_key.items():
        # the paper's headline shape: the resetting-counter scheme keeps
        # misspeculation exposure (IH) tiny...
        assert breakdown.ih < 0.02, (config, timing)
        # ...at the cost of a large correct-but-low-confidence set
        assert breakdown.cl > 0.10, (config, timing)
        # fractions are a partition
        total = breakdown.ch + breakdown.cl + breakdown.ih + breakdown.il
        assert abs(total - 1.0) < 1e-9
    # immediate update predicts no worse than delayed at equal geometry
    for config in ("4/24", "8/48"):
        assert (
            by_key[(config, "I")].correct >= by_key[(config, "D")].correct - 0.02
        )
    # delayed updating degrades with larger width/window (paper Section 6)
    assert (
        by_key[("8/48", "D")].correct <= by_key[("4/24", "D")].correct + 0.02
    )
