"""FIG3: regenerate the Figure 3 model-speedup sweep (reduced scale)."""

from repro.harness.figure3 import figure3_table, run_figure3

from conftest import BENCH_BENCHMARKS, BENCH_CONFIGS, BENCH_TRACE_LIMIT


def test_bench_figure3(benchmark):
    cells = benchmark.pedantic(
        lambda: run_figure3(
            max_instructions=BENCH_TRACE_LIMIT,
            benchmarks=BENCH_BENCHMARKS,
            configs=BENCH_CONFIGS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure3_table(cells))
    grid = {(c.config_label, c.setting, c.model_name): c.speedup for c in cells}

    def s(config, setting, model):
        return grid[(config, setting, model)]

    for config in ("4/24", "8/48"):
        for setting in ("D/R", "I/R", "D/O", "I/O"):
            # (a) good significantly worse than great and super
            assert s(config, setting, "good") <= s(config, setting, "super")
            assert s(config, setting, "good") <= s(config, setting, "great") + 0.01
        # (c) confidence moves performance more than update timing:
        # real -> oracle gain exceeds delayed -> immediate gain (super model)
        conf_gain = s(config, "I/O", "super") - s(config, "I/R", "super")
        timing_gain = s(config, "I/R", "super") - s(config, "D/R", "super")
        assert conf_gain >= timing_gain - 0.02
    # benefits grow with width/window (paper: wider processors expose more
    # dependences)
    assert s("8/48", "I/O", "super") >= s("4/24", "I/O", "super") - 0.02
