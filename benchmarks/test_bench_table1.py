"""TAB1: regenerate Table 1 (benchmark characteristics)."""

from repro.harness.table1 import render_table1, run_table1


def test_bench_table1(benchmark):
    # Full traces: Table 1 only needs the functional simulator, which is
    # fast enough to run every kernel to completion.
    rows = benchmark.pedantic(
        lambda: run_table1(max_instructions=None), rounds=1, iterations=1
    )
    assert len(rows) == 8
    print()
    print(render_table1(rows))
    # shape: every kernel lands near its paper predicted-% value
    for row in rows:
        assert abs(row.predicted_pct - row.paper_predicted_pct) < 7.0, row
    # ijpeg is the most predictable, xlisp among the least (paper order)
    by_name = {r.benchmark: r.predicted_pct for r in rows}
    assert by_name["ijpeg"] == max(by_name.values())
    assert by_name["xlisp"] <= by_name["ijpeg"] - 10
