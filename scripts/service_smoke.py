#!/usr/bin/env python3
"""Simulation service smoke (the CI `service-smoke` job, runnable
locally).

Drives the always-on service (``repro.service``) through the full
acceptance scenario on one host:

1. Runs a small Figure 3 grid inline (``jobs=1``) as the reference.
2. Starts a service with a fresh result store and has **two concurrent
   clients** submit overlapping halves of the grid; asserts the
   overlap executed exactly once (store/stats accounting) and both
   clients' results are bit-identical to the inline reference.
3. **Restarts the service** (new instance, same store directory) and
   replays the whole grid cold-cache: asserts a 100% warm-hit ratio —
   zero recomputation — and bit-identical responses again.
4. Runs the SLO load profile (``scripts/service_load.py``) against a
   third instance and writes the report into ``--out-dir`` for CI to
   upload as an artifact.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="service-artifacts")
    parser.add_argument(
        "--benchmarks", nargs="+", default=["compress", "perl"]
    )
    parser.add_argument("--max-instructions", type=int, default=800)
    args = parser.parse_args(argv)

    # A private warm trace cache: the inline reference pass populates
    # it, so the service's executors mmap entries instead of
    # re-capturing.
    os.environ.setdefault(
        "REPRO_TRACE_CACHE", tempfile.mkdtemp(prefix="repro-service-smoke-")
    )
    # The smoke controls its own store; a developer's env must not leak.
    os.environ["REPRO_RESULT_STORE"] = "off"

    from repro.core.model import GOOD_MODEL, GREAT_MODEL
    from repro.engine.config import paper_config
    from repro.harness.figure3 import SETTINGS
    from repro.harness.parallel import SimJob, run_jobs
    from repro.metrics.counters import SimCounters
    from repro.service import results as result_store
    from repro.service.client import ServiceClient
    from repro.service.server import ServiceConfig, SimulationService

    config = paper_config("4/24")
    names = args.benchmarks
    grid = [SimJob(n, config, None, args.max_instructions) for n in names]
    for timing, conf in SETTINGS:
        for model in (GOOD_MODEL, GREAT_MODEL):
            grid.extend(
                SimJob(n, config, model, args.max_instructions,
                       confidence=conf, update_timing=timing)
                for n in names
            )

    start = time.perf_counter()
    reference = run_jobs(grid, jobs=1)
    serial_seconds = time.perf_counter() - start

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    store = out_dir / "result-store"
    # The scenario's accounting assumes a cold store: phase 1 counts
    # executions, so entries from an earlier local run must not leak in.
    result_store.clear_store(store)

    status = 0

    def fail(message: str) -> None:
        nonlocal status
        print(f"FAIL: {message}")
        status = 1

    # -- phase 1: two concurrent clients, overlapping halves ---------------
    # Client A takes the first 2/3, client B the last 2/3: the middle
    # third is submitted by both and must execute exactly once.
    third = len(grid) // 3
    slices = {"a": slice(0, 2 * third), "b": slice(third, len(grid))}
    outputs: dict[str, list] = {}
    errors: dict[str, Exception] = {}

    start = time.perf_counter()
    service = SimulationService(ServiceConfig(store=store))
    host, port = service.start()

    def drive(name: str) -> None:
        client = ServiceClient(host, port, client_id=name)
        try:
            outputs[name] = client.run(grid[slices[name]], timeout=300.0)
        except Exception as error:  # surfaced after join
            errors[name] = error

    threads = [
        threading.Thread(target=drive, args=(name,)) for name in slices
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = service.stats.as_dict()
    service.stop()
    concurrent_seconds = time.perf_counter() - start

    for name, error in errors.items():
        fail(f"client {name} raised: {error}")
    unique_keys = len(grid)  # every grid point is distinct
    if stats["executed"] != unique_keys:
        fail(
            f"{stats['executed']} executions for {unique_keys} unique "
            "jobs (overlap recomputed or points lost)"
        )
    for name, results in outputs.items():
        expected = reference[slices[name]]
        if [r.counters for r in results] != [r.counters for r in expected]:
            fail(f"client {name} results differ from the jobs=1 reference")
    entries = len(result_store.store_entries(store))
    if entries != unique_keys:
        fail(f"store holds {entries} entries for {unique_keys} jobs")

    # -- phase 2: restart; the whole grid must be served warm --------------
    service = SimulationService(ServiceConfig(store=store))
    host, port = service.start()
    client = ServiceClient(host, port, client_id="post-restart")
    doc = client.run_sync(grid, timeout=300.0)
    stats2 = service.stats.as_dict()
    service.stop()

    warm = sum(1 for d in doc["dispositions"] if d == "store")
    warm_ratio = warm / len(grid)
    if warm_ratio != 1.0:
        fail(
            f"post-restart warm-hit ratio {warm_ratio:.2%} "
            f"({warm}/{len(grid)} dispositions 'store')"
        )
    if stats2["executed"] != 0:
        fail(f"post-restart service executed {stats2['executed']} jobs")
    from repro.cluster.serial import result_from_wire

    warm_results = [result_from_wire(wire) for wire in doc["results"]]
    if [r.counters for r in warm_results] != [r.counters for r in reference]:
        fail("store-served results differ from the jobs=1 reference")
    merged_ref = SimCounters.merged(r.counters for r in reference)
    merged_warm = SimCounters.merged(r.counters for r in warm_results)
    if merged_ref != merged_warm:
        fail("merged SimCounters differ from the jobs=1 reference")

    # -- phase 3: SLO report ------------------------------------------------
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import service_load

    slo_path = out_dir / "service_slo.json"
    slo_status = service_load.main(
        [
            "--benchmarks", *names,
            "--max-instructions", str(min(args.max_instructions, 600)),
            "--ramp", "1,2,4",
            "--requests", "15",
            "--out", str(slo_path),
        ]
    )
    if slo_status != 0:
        fail(f"service_load exited {slo_status}")

    rows = [
        ("grid points", str(len(grid))),
        ("inline reference (jobs=1)", f"{serial_seconds:.2f} s"),
        ("two overlapping clients", f"{concurrent_seconds:.2f} s"),
        ("jobs executed (unique)", f"{stats['executed']}/{unique_keys}"),
        ("warm hits during overlap", str(stats["warm_hits"])),
        ("joined in-flight", str(stats["joined"])),
        ("post-restart warm-hit ratio", f"{warm_ratio:.0%}"),
        ("post-restart executions", str(stats2["executed"])),
        ("merged SimCounters identical", "yes" if merged_ref ==
         merged_warm else "NO"),
        ("result", "ok" if status == 0 else "FAIL"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"{label:<{width}}  {value}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        lines = [
            "### Service smoke (concurrent clients + restart warm-serve)",
            "",
            "| check | value |",
            "|---|---|",
        ]
        lines += [f"| {label} | {value} |" for label, value in rows]
        lines.append("")
        with open(summary_path, "a") as handle:
            handle.write("\n".join(lines) + "\n")

    return status


if __name__ == "__main__":
    sys.exit(main())
