#!/usr/bin/env python3
"""Load generator + SLO report for the always-on simulation service.

Drives a service (an in-process one by default, or a running instance
via ``--connect``) through a measured load profile and reports the
latency/throughput SLOs documented in docs/SERVICE.md:

1. **Cold phase** — one client submits the whole job pool once, so
   every key lands in the result store (and the cold-path latency is
   recorded separately).
2. **Warm ramp** — for each client count in ``--ramp``, that many
   concurrent clients issue ``--requests`` blocking ``/v1/run``
   requests each over the warm pool, every request's wall latency is
   recorded, and per-step throughput is computed.  The *saturation
   point* is the client count with the highest observed throughput —
   beyond it, adding clients adds queueing, not requests per second.
3. **Report** — p50/p95/p99 warm latency (aggregated across the ramp),
   peak throughput, warm-hit ratio (requests answered entirely from
   the store), and any 429 backpressure responses (counted, not
   hidden; rejected requests retry after the advised delay and are
   excluded from the latency population).

The JSON report is written to ``--out`` (CI uploads it as an
artifact); ``--record BENCH_engine_perf.json`` additionally merges the
summary under the record's ``service`` key so ``scripts/perf_diff.py``
renders it next to the engine-throughput diff.  Absolute numbers are
host-dependent — like every perf record here, the report is
informational, never a CI gate.

Usage::

    PYTHONPATH=src python scripts/service_load.py [--out slo.json]
    PYTHONPATH=src python scripts/service_load.py --connect HOST:PORT
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted latency list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


def _build_pool(benchmarks: list[str], max_instructions: int) -> list:
    from repro.core.model import GOOD_MODEL, GREAT_MODEL
    from repro.engine.config import paper_config
    from repro.harness.figure3 import SETTINGS
    from repro.harness.parallel import SimJob

    config = paper_config("4/24")
    pool = [SimJob(n, config, None, max_instructions) for n in benchmarks]
    for timing, conf in SETTINGS:
        for model in (GOOD_MODEL, GREAT_MODEL):
            pool.extend(
                SimJob(n, config, model, max_instructions,
                       confidence=conf, update_timing=timing)
                for n in benchmarks
            )
    return pool


def _client_worker(
    make_client, pool, requests: int, offset: int, record: dict
) -> None:
    """One load client: blocking ``/v1/run`` calls round-robin over the
    pool, honoring backpressure advice."""
    from repro.service.client import ServiceError

    client = make_client()
    latencies: list[float] = []
    warm = 0
    rejected = 0
    errors = 0
    for i in range(requests):
        job = pool[(offset + i) % len(pool)]
        started = time.perf_counter()
        try:
            doc = client.run_sync([job], timeout=120.0)
        except ServiceError as error:
            if getattr(error, "status", None) == 429:
                rejected += 1
                time.sleep(min(getattr(error, "retry_after", 0.5), 2.0))
                continue
            errors += 1
            continue
        except OSError:
            errors += 1
            continue
        latencies.append(time.perf_counter() - started)
        if doc.get("dispositions") and all(
            d in ("store", "done") for d in doc["dispositions"]
        ):
            warm += 1
    record["latencies"] = latencies
    record["warm"] = warm
    record["rejected"] = rejected
    record["errors"] = errors


def run_profile(
    make_client, pool, ramp: list[int], requests: int
) -> dict:
    """The measured profile: cold pass, then the warm client ramp."""
    started = time.perf_counter()
    cold_client = make_client()
    cold_doc = cold_client.run_sync(pool, timeout=600.0)
    cold_seconds = time.perf_counter() - started
    cold_warm = all(d == "store" for d in cold_doc.get("dispositions", []))

    steps = []
    all_latencies: list[float] = []
    total_warm = 0
    total_served = 0
    total_rejected = 0
    total_errors = 0
    for clients in ramp:
        records = [dict() for _ in range(clients)]
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(make_client, pool, requests, i * 7, records[i]),
            )
            for i in range(clients)
        ]
        step_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - step_start
        latencies = sorted(
            lat for record in records for lat in record["latencies"]
        )
        served = len(latencies)
        warm = sum(record["warm"] for record in records)
        rejected = sum(record["rejected"] for record in records)
        errors = sum(record["errors"] for record in records)
        steps.append(
            {
                "clients": clients,
                "requests": served,
                "throughput_rps": round(served / wall, 3) if wall else 0.0,
                "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
                "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
                "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
                "warm_hits": warm,
                "rejected_429": rejected,
                "errors": errors,
            }
        )
        all_latencies.extend(latencies)
        total_warm += warm
        total_served += served
        total_rejected += rejected
        total_errors += errors

    all_latencies.sort()
    best = max(steps, key=lambda step: step["throughput_rps"], default=None)
    return {
        "pool_jobs": len(pool),
        "cold_seconds": round(cold_seconds, 3),
        "cold_served_from_store": cold_warm,
        "ramp": steps,
        "p50_ms": round(_percentile(all_latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(all_latencies, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(all_latencies, 0.99) * 1e3, 3),
        "mean_ms": round(
            statistics.fmean(all_latencies) * 1e3, 3
        ) if all_latencies else 0.0,
        "throughput_rps": best["throughput_rps"] if best else 0.0,
        "saturation_clients": best["clients"] if best else 0,
        "warm_hit_ratio": round(total_warm / total_served, 4)
        if total_served else 0.0,
        "requests_served": total_served,
        "rejected_429": total_rejected,
        "errors": total_errors,
    }


def render(report: dict) -> str:
    rows = [
        ("job pool", str(report["pool_jobs"])),
        ("cold pass", f"{report['cold_seconds']:.2f} s"),
        ("warm requests served", str(report["requests_served"])),
        ("warm-hit ratio", f"{report['warm_hit_ratio']:.2%}"),
        ("latency p50 / p95 / p99",
         f"{report['p50_ms']:.1f} / {report['p95_ms']:.1f} / "
         f"{report['p99_ms']:.1f} ms"),
        ("peak throughput",
         f"{report['throughput_rps']:.1f} req/s "
         f"at {report['saturation_clients']} clients"),
        ("429 rejections", str(report["rejected_429"])),
        ("transport errors", str(report["errors"])),
    ]
    width = max(len(label) for label, _ in rows)
    lines = [f"{label:<{width}}  {value}" for label, value in rows]
    lines.append("per-step ramp:")
    for step in report["ramp"]:
        lines.append(
            f"  {step['clients']:3d} clients  "
            f"{step['throughput_rps']:8.1f} req/s  "
            f"p95 {step['p95_ms']:7.1f} ms  "
            f"429s {step['rejected_429']}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="measure a running service (default: start one in-process)",
    )
    parser.add_argument("--benchmarks", nargs="+", default=["compress", "perl"])
    parser.add_argument("--max-instructions", type=int, default=600)
    parser.add_argument(
        "--ramp", default="1,2,4,8", metavar="N,N,...",
        help="client counts for the warm ramp (default: 1,2,4,8)",
    )
    parser.add_argument(
        "--requests", type=int, default=25,
        help="warm requests per client per ramp step (default: 25)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=256,
        help="queue bound for the in-process service",
    )
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--record", default=None, metavar="PATH",
        help="merge the SLO summary under this perf record's `service` key",
    )
    args = parser.parse_args(argv)
    ramp = [int(n) for n in args.ramp.split(",") if n.strip()]

    os.environ.setdefault(
        "REPRO_TRACE_CACHE", tempfile.mkdtemp(prefix="repro-service-load-")
    )
    from repro.service.client import ServiceClient

    pool = _build_pool(args.benchmarks, args.max_instructions)

    service = None
    if args.connect:
        from repro.cluster.protocol import parse_address

        host, port = parse_address(args.connect)
    else:
        from repro.service.server import ServiceConfig, SimulationService

        store = tempfile.mkdtemp(prefix="repro-service-load-store-")
        service = SimulationService(
            ServiceConfig(store=store, max_queue=args.max_queue)
        )
        host, port = service.start()

    counter = [0]

    def make_client() -> ServiceClient:
        counter[0] += 1
        return ServiceClient(host, port, client_id=f"load-{counter[0]}")

    try:
        report = run_profile(make_client, pool, ramp, args.requests)
    finally:
        if service is not None:
            service.stop()

    print(render(report))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    if args.record:
        record_path = Path(args.record)
        try:
            record = json.loads(record_path.read_text())
        except (OSError, json.JSONDecodeError):
            record = {}
        if isinstance(record, dict):
            record["service"] = {
                key: report[key]
                for key in (
                    "p50_ms", "p95_ms", "p99_ms", "throughput_rps",
                    "warm_hit_ratio", "saturation_clients",
                )
            }
            record_path.write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n"
            )
            print(f"merged service SLO into {record_path}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        lines = [
            "### Simulation service SLO (service_load.py)",
            "",
            "| metric | value |",
            "|---|---|",
            f"| warm-hit ratio | {report['warm_hit_ratio']:.2%} |",
            f"| latency p50 | {report['p50_ms']:.1f} ms |",
            f"| latency p95 | {report['p95_ms']:.1f} ms |",
            f"| latency p99 | {report['p99_ms']:.1f} ms |",
            f"| peak throughput | {report['throughput_rps']:.1f} req/s |",
            f"| saturation point | {report['saturation_clients']} clients |",
            f"| 429 rejections | {report['rejected_429']} |",
            "",
        ]
        with open(summary_path, "a") as handle:
            handle.write("\n".join(lines) + "\n")
    return 0 if report["errors"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
