"""Regenerate the golden SimCounters snapshots under ``tests/golden/``.

The cycle engine is fully deterministic, so a complete counter dump for a
fixed workload/configuration pins the engine's timing behaviour exactly.
``tests/test_golden_counters.py`` replays every snapshot and asserts
bit-for-bit equality, which is how performance work on the engine proves
it is a pure speed change and not a model change.

Run this ONLY when a timing change is intentional::

    PYTHONPATH=src python scripts/gen_golden_counters.py

and say so in the commit message.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path

from repro.asm import assemble
from repro.core.model import GREAT_MODEL
from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_baseline, run_trace
from repro.func import Machine
from repro.programs.micro import MICRO_KERNELS, micro_kernel
from repro.programs.suite import benchmark_suite
from repro.trace.capture import capture_trace
from repro.vp.confidence import SaturatingConfidenceEstimator
from repro.vp.hybrid import HybridPredictor
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import StridePredictor
from repro.vp.tagged import TaggedContextPredictor

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"
VARIANT_DIR = GOLDEN_DIR / "variants"
SPEC_TRACE_LIMIT = 2000
MICRO_TRACE_LIMIT = 3000
CONFIG = ProcessorConfig(issue_width=8, window_size=48)

#: The variant matrix pins engine/predictor paths the main D/R snapshots
#: never exercise: immediate update timing, saturating (non-resetting)
#: confidence, and every alternative predictor implementation.  Each entry
#: is (variant name, update timing, confidence factory, predictor factory).
VARIANTS = (
    ("great_IR", "I", None, None),
    ("great_DS", "D", SaturatingConfidenceEstimator, None),
    ("lastvalue_DR", "D", None, LastValuePredictor),
    ("stride_DR", "D", None, StridePredictor),
    ("hybrid_DR", "D", None, HybridPredictor),
    ("tagged_IR", "I", None, TaggedContextPredictor),
)

#: Variant snapshots run on a workload subset (the full counter dumps pin
#: the code path, not the workload sweep — the 13 main snapshots do that).
VARIANT_WORKLOADS = ("micro_fib", "micro_pointer_chase",
                     "micro_streaming", "spec_compress")


def counters_dict(counters) -> dict:
    out = {}
    for f in fields(counters):
        value = getattr(counters, f.name)
        if f.name == "extra":
            continue
        out[f.name] = value
    return out


def micro_trace(name: str):
    machine = Machine(assemble(micro_kernel(name)))
    return capture_trace(machine, MICRO_TRACE_LIMIT)


def workloads():
    for name in sorted(MICRO_KERNELS):
        yield f"micro_{name}", micro_trace(name)
    for spec in benchmark_suite():
        yield f"spec_{spec.name}", spec.trace(SPEC_TRACE_LIMIT)


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    VARIANT_DIR.mkdir(parents=True, exist_ok=True)
    for label, trace in workloads():
        base = run_baseline(trace, CONFIG)
        vp = run_trace(
            trace, CONFIG, GREAT_MODEL, confidence="R", update_timing="D"
        )
        snapshot = {
            "workload": label,
            "trace_length": len(trace),
            "config": {"issue_width": CONFIG.issue_width,
                       "window_size": CONFIG.window_size},
            "model": "great",
            "setting": "D/R",
            "base": counters_dict(base.counters),
            "vp": counters_dict(vp.counters),
        }
        path = GOLDEN_DIR / f"{label}.json"
        path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path.name}: base {base.cycles} cyc, vp {vp.cycles} cyc")
        if label not in VARIANT_WORKLOADS:
            continue
        for variant, timing, conf_factory, pred_factory in VARIANTS:
            vp = run_trace(
                trace,
                CONFIG,
                GREAT_MODEL,
                confidence=conf_factory() if conf_factory else "R",
                update_timing=timing,
                predictor=pred_factory() if pred_factory else None,
            )
            vsnap = {
                "workload": label,
                "variant": variant,
                "trace_length": len(trace),
                "config": {"issue_width": CONFIG.issue_width,
                           "window_size": CONFIG.window_size},
                "model": "great",
                "update_timing": timing,
                "confidence": conf_factory.__name__ if conf_factory else "R",
                "predictor": pred_factory.__name__ if pred_factory else "context",
                "vp": counters_dict(vp.counters),
            }
            vpath = VARIANT_DIR / f"{label}__{variant}.json"
            vpath.write_text(json.dumps(vsnap, indent=1, sort_keys=True) + "\n")
            print(f"wrote variants/{vpath.name}: vp {vp.cycles} cyc")


if __name__ == "__main__":
    main()
