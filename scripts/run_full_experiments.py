"""Run the full-scale reproduction and dump results for EXPERIMENTS.md.

Runs every experiment in the registry at publication scale (all eight
kernels, all three paper configurations) and writes both the rendered
text and a JSON results file under ``results/``.

Usage:  python scripts/run_full_experiments.py [--trace-limit N] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.harness.figure1 import render_figure1, run_figure1
from repro.harness.figure3 import figure3_table, render_figure3, run_figure3
from repro.harness.figure4 import render_figure4, run_figure4
from repro.harness.render import render_table
from repro.harness.sweeps import (
    approximate_equality_sweep,
    branch_predictor_sweep,
    confidence_scheme_sweep,
    confidence_strength_sweep,
    invalidation_scheme_sweep,
    latency_sensitivity_sweep,
    predictor_sweep,
    resolution_policy_sweep,
    selective_prediction_sweep,
    verification_scheme_sweep,
    vp_ports_sweep,
    width_scaling_sweep,
)
from repro.harness.table1 import render_table1, run_table1


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trace-limit", type=int, default=8000)
    parser.add_argument("--sweep-limit", type=int, default=5000)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for every simulation grid (0 = all cores); "
        "results are identical for any value",
    )
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    out_dir = Path(args.out)
    out_dir.mkdir(exist_ok=True)
    report: dict = {"trace_limit": args.trace_limit, "jobs": args.jobs}
    text_parts: list[str] = []

    def section(title: str, body: str) -> None:
        text_parts.append(f"### {title}\n\n```\n{body}\n```\n")
        print(f"[done] {title}", flush=True)

    t0 = time.time()

    rows = run_table1(max_instructions=None)
    report["table1"] = [
        {
            "benchmark": r.benchmark,
            "dynamic": r.dynamic_instructions,
            "predicted_pct": round(r.predicted_pct, 1),
            "paper_predicted_pct": r.paper_predicted_pct,
        }
        for r in rows
    ]
    section("Table 1", render_table1(rows))

    scenarios = run_figure1()
    report["figure1"] = {s.label: s.cycles for s in scenarios}
    section("Figure 1", render_figure1(scenarios))

    cells = run_figure3(max_instructions=args.trace_limit, jobs=args.jobs)
    report["figure3"] = [
        {
            "config": c.config_label,
            "setting": c.setting,
            "model": c.model_name,
            "speedup": round(c.speedup, 4),
            "per_benchmark": {k: round(v, 4) for k, v in c.per_benchmark.items()},
        }
        for c in cells
    ]
    section("Figure 3", render_figure3(cells) + "\n" + figure3_table(cells))

    f4 = run_figure4(max_instructions=args.trace_limit, jobs=args.jobs)
    report["figure4"] = [
        {
            "config": c.config_label,
            "timing": c.timing,
            **{k: round(v, 4) for k, v in c.breakdown.as_dict().items()},
        }
        for c in f4
    ]
    section("Figure 4", render_figure4(f4))

    for name, sweep in (
        ("ABL-L latency sensitivity", latency_sensitivity_sweep),
        ("ABL-V verification schemes", verification_scheme_sweep),
        ("ABL-I invalidation schemes", invalidation_scheme_sweep),
        ("ABL-P predictors", predictor_sweep),
        ("ABL-R resolution policies", resolution_policy_sweep),
        ("ABL-C confidence width", confidence_strength_sweep),
        ("ABL-CS confidence schemes", confidence_scheme_sweep),
        ("ABL-S selective prediction", selective_prediction_sweep),
        ("ABL-PT predictor ports", vp_ports_sweep),
        ("ABL-B branch predictors", branch_predictor_sweep),
        ("ABL-E approximate equality", approximate_equality_sweep),
        ("ABL-W width scaling", width_scaling_sweep),
    ):
        points = sweep(max_instructions=args.sweep_limit, jobs=args.jobs)
        report[name] = {p.label: round(p.speedup, 4) for p in points}
        section(
            name,
            render_table(("Point", "HM Speedup"),
                         [(p.label, p.speedup) for p in points]),
        )

    report["wall_seconds"] = round(time.time() - t0, 1)
    (out_dir / "full_results.json").write_text(json.dumps(report, indent=2))
    (out_dir / "full_results.txt").write_text("\n".join(text_parts))
    print(f"total wall time: {report['wall_seconds']}s")


if __name__ == "__main__":
    main()
