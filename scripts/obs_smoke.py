#!/usr/bin/env python3
"""Observability smoke check (the CI `obs-smoke` job, runnable locally).

Runs one small kernel instrumented, validates the exported Chrome
trace against the trace-event schema, and requires every one of the
paper's eight latency-event kinds to have been observed.  Exit status
is the check result; the exported files are left in ``--out-dir`` for
upload as a build artifact.

Usage::

    PYTHONPATH=src python scripts/obs_smoke.py [--out-dir obs-artifacts]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="micro:fib")
    parser.add_argument("--model", default="good")
    parser.add_argument("--max-instructions", type=int, default=8000)
    parser.add_argument("--out-dir", default="obs-artifacts")
    args = parser.parse_args(argv)

    from repro.core.events import LatencyEventKind
    from repro.obs import (
        chrome_trace,
        metrics_csv,
        run_instrumented,
        summary_table,
        validate_chrome_trace,
    )

    run = run_instrumented(
        args.benchmark,
        model=args.model,
        max_instructions=args.max_instructions,
    )

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = args.benchmark.replace(":", "_").replace("/", "_")

    doc = chrome_trace(run.tracer, label=f"{args.benchmark} {args.model}")
    problems = validate_chrome_trace(doc)
    trace_path = out_dir / f"{stem}.trace.json"
    trace_path.write_text(json.dumps(doc))
    (out_dir / f"{stem}.metrics.csv").write_text(metrics_csv(run.histograms))

    print(summary_table(run.histograms, title=f"{args.benchmark} / {args.model}"))
    print()
    print(f"trace: {trace_path} ({len(doc['traceEvents'])} events)")

    status = 0
    if problems:
        print("chrome trace schema problems:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        status = 1
    missing = set(LatencyEventKind) - run.kinds_seen
    if missing:
        names = ", ".join(sorted(kind.value for kind in missing))
        print(f"latency-event kinds not observed: {names}", file=sys.stderr)
        status = 1
    if status == 0:
        print(f"all {len(LatencyEventKind)} latency-event kinds observed; "
              "trace schema valid")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
