"""Render the reproduction report from a full-results JSON.

Usage:  python scripts/make_report.py [results/full_results.json] [-o REPORT.md]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.harness.report import render_report


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "results", nargs="?", default="results/full_results.json"
    )
    parser.add_argument("-o", "--out", default=None)
    args = parser.parse_args()
    results = json.loads(Path(args.results).read_text())
    report = render_report(results)
    if args.out:
        Path(args.out).write_text(report + "\n")
        print(f"wrote {args.out}")
    else:
        print(report)


if __name__ == "__main__":
    main()
