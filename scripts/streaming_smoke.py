#!/usr/bin/env python3
"""Streaming trace-plane smoke (the CI `streaming-smoke` step).

Three checks, each runnable locally:

1. **Bounded memory** — captures a multi-million-record synthetic
   workload through the chunked (VSRT v4) writer in a fresh subprocess
   and reads that process's peak RSS.  A second subprocess captures a
   trace several times longer; peak RSS must *not* scale with trace
   length (it tracks the chunk size), which is the streaming plane's
   O(chunk) memory claim measured end to end.
2. **Bit-identity** — a streamed capture read back chunk by chunk must
   equal the same workload materialized in memory, record for record.
3. **Sampled-vs-exact** — runs the phase-sampled estimator against the
   exact engine on a phase-structured workload and reports CPI error
   and wall-clock speedup.  The speedup is informational (CI runners
   are too noisy for a hard perf gate); the error bound is the check.

Results are appended to ``$GITHUB_STEP_SUMMARY`` as a markdown table
when that variable is set.  Exit status is the combined check result.

Usage::

    PYTHONPATH=src python scripts/streaming_smoke.py [--records 5000000]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

_CAPTURE_SNIPPET = """
import json, resource, sys
from repro.trace.binary import ChunkWriter, read_trace_chunked
from repro.trace.synthetic import SyntheticTraceConfig, iter_synthetic_trace

length, chunk, path = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
config = SyntheticTraceConfig(length=length, seed=7)
with ChunkWriter(path, chunk) as writer:
    writer.extend(iter_synthetic_trace(config))
trace = read_trace_chunked(path)
print(json.dumps({
    "total": writer.total,
    "chunks": trace.chunk_count,
    "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _capture_in_subprocess(records: int, chunk: int, path: str) -> dict:
    """Stream ``records`` synthetic records to ``path`` in a fresh
    interpreter; returns the subprocess's own report (peak RSS etc.)."""
    result = subprocess.run(
        [sys.executable, "-c", _CAPTURE_SNIPPET,
         str(records), str(chunk), path],
        capture_output=True, text=True, check=True,
    )
    return json.loads(result.stdout)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=5_000_000,
                        help="long-capture length (default 5M)")
    parser.add_argument("--baseline-records", type=int, default=1_000_000,
                        help="short-capture length the RSS is compared to")
    parser.add_argument("--chunk", type=int, default=1_000_000)
    parser.add_argument("--rss-growth-limit", type=float, default=1.5,
                        help="max allowed peak-RSS ratio long/short")
    args = parser.parse_args(argv)

    from repro.engine.config import ProcessorConfig
    from repro.sampling import compare_sampled_exact
    from repro.trace.binary import dumps_trace_chunked, loads_trace_chunked
    from repro.trace.synthetic import (
        PhasedSyntheticConfig,
        SyntheticTraceConfig,
        generate_phased_synthetic_trace,
        generate_synthetic_trace,
    )

    status = 0
    rows: list[tuple[str, str]] = []

    # 1. Bounded memory: peak RSS must track the chunk, not the trace.
    with tempfile.TemporaryDirectory() as tmp:
        short = _capture_in_subprocess(
            args.baseline_records, args.chunk, os.path.join(tmp, "short.vsrt4")
        )
        long = _capture_in_subprocess(
            args.records, args.chunk, os.path.join(tmp, "long.vsrt4")
        )
    growth = short["ru_maxrss_kb"] and (
        long["ru_maxrss_kb"] / short["ru_maxrss_kb"]
    )
    rows += [
        ("short capture", f"{short['total']:,} records, "
                          f"{short['ru_maxrss_kb'] / 1024:.0f} MiB peak"),
        ("long capture", f"{long['total']:,} records, "
                         f"{long['ru_maxrss_kb'] / 1024:.0f} MiB peak"),
        ("peak-RSS growth (limit "
         f"{args.rss_growth_limit}x)", f"{growth:.2f}x"),
    ]
    if long["total"] != args.records or long["chunks"] != (
        args.records + args.chunk - 1
    ) // args.chunk:
        print(f"FAIL: long capture wrong shape: {long}")
        status = 1
    if growth > args.rss_growth_limit:
        print(
            f"FAIL: peak RSS grew {growth:.2f}x for a "
            f"{args.records / args.baseline_records:.0f}x longer trace"
        )
        status = 1

    # 2. Bit-identity of the streamed representation (small scale).
    records = generate_synthetic_trace(
        SyntheticTraceConfig(length=100_000, seed=7)
    )
    streamed = loads_trace_chunked(dumps_trace_chunked(records, 16_000))
    identical = list(streamed) == records
    rows.append(("streamed == in-memory (100k)", "yes" if identical else "NO"))
    if not identical:
        print("FAIL: chunked round trip is not bit-identical")
        status = 1

    # 3. Sampled-vs-exact on a phase-structured workload.
    chunk = 16_000
    phased = PhasedSyntheticConfig(
        phases=tuple(
            SyntheticTraceConfig(
                length=4 * chunk, load_every=0, branch_taken_bias=1.0,
                chain_length=cl, branch_every=be, seed=seed,
            )
            for cl, be, seed in ((2, 8, 101), (6, 24, 202), (4, 12, 303))
        ),
        schedule=(0, 1, 2) * 2,
    )
    trace = loads_trace_chunked(
        dumps_trace_chunked(generate_phased_synthetic_trace(phased), chunk)
    )
    report = compare_sampled_exact(trace, ProcessorConfig(), phases=3)
    rows += [
        ("sampled workload", f"{report['records']:,} records, "
                             f"{report['phases']} phases"),
        ("sampled CPI error (limit 2%)", f"{report['cpi_error']:.2%}"),
        ("sampled speedup (informational)", f"{report['speedup']:.1f}x"),
    ]
    if report["cpi_error"] > 0.02:
        print(f"FAIL: sampled CPI error {report['cpi_error']:.2%} > 2%")
        status = 1

    rows.append(("result", "ok" if status == 0 else "FAIL"))
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"{label:<{width}}  {value}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        lines = [
            "### Streaming trace-plane smoke (bounded RSS + sampling)",
            "",
            "| check | value |",
            "|---|---|",
        ]
        lines += [f"| {label} | {value} |" for label, value in rows]
        lines.append("")
        with open(summary_path, "a") as handle:
            handle.write("\n".join(lines) + "\n")

    return status


if __name__ == "__main__":
    sys.exit(main())
