#!/usr/bin/env python3
"""Cluster sweep smoke (the CI `cluster-smoke` job, runnable locally).

Drives the fault-tolerant sweep service (``repro.cluster``) through the
full acceptance scenario on one host:

1. Runs a small Figure 3 grid inline (``jobs=1``) as the reference.
2. Starts a scheduler (journal attached) plus two worker subprocesses,
   one carrying an injected ``kill_on_lease`` fault — it SIGKILLs
   itself upon its first lease, mid-sweep.
3. Submits the same grid, waits until at least one point is journaled,
   then **kills the scheduler** and restarts a fresh one on the same
   port over the same journal (a forced restart with total in-memory
   state loss).
4. Lets the resumed sweep finish and asserts:

   * every per-point ``SimCounters`` — and their merged sum — is
     bit-identical to the inline reference,
   * the faulty worker really died of SIGKILL,
   * every point completed before the restart was *replayed* from the
     journal by the resubmission (zero recomputed jobs), and
   * the journal holds exactly one record per grid point.

The journal is left in ``--out-dir`` for CI to upload as an artifact;
a summary table is appended to ``$GITHUB_STEP_SUMMARY`` when set.

Usage::

    PYTHONPATH=src python scripts/cluster_smoke.py [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import time
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="cluster-artifacts")
    parser.add_argument(
        "--benchmarks", nargs="+", default=["compress", "perl"]
    )
    parser.add_argument("--max-instructions", type=int, default=800)
    parser.add_argument(
        "--kill-lease", type=int, default=1,
        help="worker 0 SIGKILLs itself on this lease (1 = its first)",
    )
    args = parser.parse_args(argv)

    # A private warm trace cache: the inline reference pass populates
    # it, so cluster workers mmap entries instead of re-capturing.
    os.environ.setdefault(
        "REPRO_TRACE_CACHE", tempfile.mkdtemp(prefix="repro-cluster-smoke-")
    )

    from repro.cluster.client import ClusterClient, spawn_worker
    from repro.cluster.faults import FaultPlan
    from repro.cluster.journal import SweepJournal
    from repro.cluster.scheduler import ClusterScheduler, SchedulerConfig
    from repro.core.model import GOOD_MODEL, GREAT_MODEL
    from repro.engine.config import paper_config
    from repro.harness.figure3 import SETTINGS
    from repro.harness.parallel import SimJob, run_jobs
    from repro.metrics.counters import SimCounters

    # A small Figure 3 grid: one configuration, the paper's four
    # settings, two models — baselines included, exactly as
    # run_figure3 lays it out.
    config = paper_config("4/24")
    names = args.benchmarks
    grid = [SimJob(n, config, None, args.max_instructions) for n in names]
    for timing, conf in SETTINGS:
        for model in (GOOD_MODEL, GREAT_MODEL):
            grid.extend(
                SimJob(n, config, model, args.max_instructions,
                       confidence=conf, update_timing=timing)
                for n in names
            )

    start = time.perf_counter()
    reference = run_jobs(grid, jobs=1)
    serial_seconds = time.perf_counter() - start

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    journal_path = out_dir / "journal.jsonl"
    journal_path.unlink(missing_ok=True)

    supervision = dict(
        heartbeat_interval=0.1,
        heartbeat_timeout=1.0,
        lease_timeout=60.0,
        poll_interval=0.05,
        monitor_interval=0.05,
        backoff_base=0.05,
        backoff_cap=0.25,
    )
    first = ClusterScheduler(
        SchedulerConfig(journal_path=journal_path, **supervision)
    )
    address = first.start()
    workers = [
        spawn_worker(address, faults=FaultPlan(kill_on_lease=args.kill_lease),
                     reconnect_deadline=120.0),
        spawn_worker(address, reconnect_deadline=120.0),
    ]
    client = ClusterClient(address)

    status = 0
    start = time.perf_counter()
    try:
        client.submit(grid)
        reader = SweepJournal(journal_path)
        deadline = time.monotonic() + 120.0
        while not reader.replay():
            if time.monotonic() > deadline:
                print("FAIL: no journaled point before the forced restart")
                return 1
            time.sleep(0.05)
        first.stop()  # forced restart: all in-memory state is lost
        pre_restart = set(reader.replay())

        second = ClusterScheduler(
            SchedulerConfig(port=address[1], journal_path=journal_path,
                            **supervision)
        )
        second.start()
        try:
            receipt = client.submit(grid)
            replayed = int(receipt.get("replayed", 0))
            if replayed < len(pre_restart):
                print(
                    f"FAIL: only {replayed}/{len(pre_restart)} pre-restart "
                    "points replayed from the journal (recompute happened)"
                )
                status = 1
            results = client.run(grid, poll=0.05, timeout=300.0)
        finally:
            second.drain()
            for process in workers:
                try:
                    process.wait(timeout=60)
                except Exception:
                    pass
            second.stop()
    finally:
        for process in workers:
            if process.poll() is None:
                process.kill()
                process.wait()
    cluster_seconds = time.perf_counter() - start

    killed_rc = workers[0].returncode
    if killed_rc != -signal.SIGKILL:
        print(f"FAIL: faulty worker exited {killed_rc}, expected SIGKILL")
        status = 1

    if [r.counters for r in results] != [r.counters for r in reference]:
        print("FAIL: cluster results differ from the jobs=1 reference")
        status = 1
    merged_ref = SimCounters.merged(r.counters for r in reference)
    merged_cluster = SimCounters.merged(r.counters for r in results)
    if merged_ref != merged_cluster:
        print("FAIL: merged SimCounters differ from the jobs=1 reference")
        status = 1

    records = SweepJournal(journal_path).records()
    keys = [record["key"] for record in records]
    if len(keys) != len(set(keys)) or len(set(keys)) != len(grid):
        print(
            f"FAIL: journal holds {len(keys)} records / {len(set(keys))} "
            f"unique keys for a {len(grid)}-point grid"
        )
        status = 1

    rows = [
        ("grid points", str(len(grid))),
        ("inline reference (jobs=1)", f"{serial_seconds:.2f} s"),
        ("cluster (kill + restart)", f"{cluster_seconds:.2f} s"),
        ("points journaled before restart", str(len(pre_restart))),
        ("pre-restart points recomputed", "0"
         if status == 0 else "(see failures)"),
        ("faulty worker exit", f"signal {-killed_rc}"
         if killed_rc is not None and killed_rc < 0 else str(killed_rc)),
        ("journal records", str(len(records))),
        ("merged SimCounters identical", "yes" if merged_ref ==
         merged_cluster else "NO"),
        ("result", "ok" if status == 0 else "FAIL"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"{label:<{width}}  {value}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        lines = [
            "### Cluster sweep smoke (worker kill + scheduler restart)",
            "",
            "| check | value |",
            "|---|---|",
        ]
        lines += [f"| {label} | {value} |" for label, value in rows]
        lines.append("")
        with open(summary_path, "a") as handle:
            handle.write("\n".join(lines) + "\n")

    return status


if __name__ == "__main__":
    sys.exit(main())
