#!/usr/bin/env python3
"""Specialized-engine smoke (the CI `specialize-smoke` step, runnable locally).

Runs a small Figure 3 grid twice through the public harness entry point:

1. **Generic** — with ``REPRO_ENGINE_SPECIALIZE=0`` exported, every grid
   point runs on the generic interpreting ``PipelineSimulator``.
2. **Specialized** — with the kill-switch cleared, every point runs on
   its config-specialized generated class (docs/PERFORMANCE.md
   section 9), memoized per fingerprint across the grid.

The step asserts the two runs produce **bit-identical merged results**
— every Figure3Cell, including the per-benchmark speedup dicts — and
reports the paired wall-clock ratio, appended to
``$GITHUB_STEP_SUMMARY`` as a markdown table when that variable is set.
The ratio is informational (CI runners are too noisy for a hard perf
gate, and at smoke scale the one-time codegen cost of each unique
fingerprint dominates the few thousand simulated instructions, so a
ratio below 1x is expected here — the amortized paired measurement
lives in ``BENCH_engine_perf.json``); bit-identity is the check.
Exit status is the check result.

Usage::

    PYTHONPATH=src python scripts/specialize_smoke.py [--jobs 1]
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--benchmarks", nargs="+", default=["compress", "m88ksim", "perl"]
    )
    parser.add_argument("--max-instructions", type=int, default=1500)
    args = parser.parse_args(argv)

    from repro.engine.config import ProcessorConfig
    from repro.engine.specialize import SPECIALIZE_ENV_VAR
    from repro.harness.figure3 import run_figure3

    configs = (
        ProcessorConfig(issue_width=4, window_size=24),
        ProcessorConfig(issue_width=8, window_size=48),
    )
    kwargs = dict(
        max_instructions=args.max_instructions,
        benchmarks=args.benchmarks,
        configs=configs,
        jobs=args.jobs,
    )

    # The kill-switch must bracket the whole generic pass: pool workers
    # inherit the environment at spawn, so setting it here covers every
    # backend the harness may route through.
    os.environ[SPECIALIZE_ENV_VAR] = "0"
    try:
        start = time.perf_counter()
        generic = run_figure3(**kwargs)
        generic_seconds = time.perf_counter() - start
    finally:
        del os.environ[SPECIALIZE_ENV_VAR]

    start = time.perf_counter()
    specialized = run_figure3(**kwargs)
    specialized_seconds = time.perf_counter() - start

    status = 0
    if len(generic) != len(specialized):
        print(
            f"FAIL: cell counts differ ({len(generic)} vs {len(specialized)})"
        )
        status = 1
    else:
        for cell_g, cell_s in zip(generic, specialized):
            if cell_g != cell_s or cell_g.per_benchmark != cell_s.per_benchmark:
                print(
                    "FAIL: specialized cell differs from generic: "
                    f"{cell_s} vs {cell_g}"
                )
                status = 1

    lanes = len(args.benchmarks) * len(configs) * (1 + 4 * 3)
    speedup = generic_seconds / specialized_seconds if specialized_seconds else 0.0
    rows = [
        ("grid lanes", str(lanes)),
        ("figure3 cells", str(len(generic))),
        (f"generic (jobs={args.jobs})", f"{generic_seconds:.2f} s"),
        (f"specialized (jobs={args.jobs})", f"{specialized_seconds:.2f} s"),
        (
            "paired speedup (informational; codegen-dominated at smoke scale)",
            f"{speedup:.3f}x",
        ),
        ("merged results bit-identical", "yes" if status == 0 else "NO"),
        ("result", "ok" if status == 0 else "FAIL"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"{label:<{width}}  {value}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        lines = [
            "### Specialized-engine smoke (bit-identity + paired speedup)",
            "",
            "| check | value |",
            "|---|---|",
        ]
        lines += [f"| {label} | {value} |" for label, value in rows]
        lines.append("")
        with open(summary_path, "a") as handle:
            handle.write("\n".join(lines) + "\n")

    return status


if __name__ == "__main__":
    sys.exit(main())
