#!/usr/bin/env python3
"""Diff a fresh BENCH_engine_perf.json against the committed record.

CI regenerates the throughput record on every run, but absolute ips
numbers are host-dependent; this script turns the two records into
per-model ratios so a human can spot a real regression at a glance.  It
is deliberately **non-blocking**: it always exits 0 unless asked to
gate via ``--fail-below`` (cross-host ratios are too noisy for a hard
CI gate — see docs/PERFORMANCE.md, "Methodology").

Usage::

    python scripts/perf_diff.py BENCH_engine_perf.json            # text
    python scripts/perf_diff.py BENCH_engine_perf.json --markdown # CI summary
    python scripts/perf_diff.py new.json --baseline old.json

With no ``--baseline`` the committed record is read from ``git show
HEAD:BENCH_engine_perf.json`` (the file in the worktree has just been
overwritten by the benchmark run).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_RECORD = "BENCH_engine_perf.json"


def _committed_record() -> dict | None:
    try:
        shown = subprocess.run(
            ["git", "show", f"HEAD:{_RECORD}"],
            cwd=_REPO_ROOT, capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if shown.returncode != 0:
        return None
    try:
        return json.loads(shown.stdout)
    except json.JSONDecodeError:
        return None


def _load_record(path: str) -> dict | None:
    """Read a record file, degrading to ``None`` (with a note) on
    missing/unreadable/malformed input instead of crashing."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        print(f"cannot read {path}: {exc.strerror or exc}")
        return None
    try:
        record = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"{path} is not valid JSON ({exc}); skipping")
        return None
    if not isinstance(record, dict):
        print(f"{path} has an unrecognised schema (expected an object); skipping")
        return None
    return record


def _model_aggregates(report: dict) -> dict[str, int]:
    """Per-model aggregate ips, recomputed from points when the record
    predates the ``model_aggregate_ips`` field.

    Tolerates older point schemas: entries missing the expected keys are
    skipped rather than crashing, so a stale committed record degrades
    to an empty (or partial) column instead of a traceback.
    """
    aggregates = report.get("model_aggregate_ips")
    if isinstance(aggregates, dict) and aggregates:
        return dict(aggregates)
    instructions: dict[str, int] = {}
    seconds: dict[str, float] = {}
    points = report.get("points")
    for point in points if isinstance(points, list) else []:
        if not isinstance(point, dict):
            continue
        model = point.get("model")
        count = point.get("instructions")
        best = point.get("best_seconds")
        if model is None or count is None or best is None:
            continue
        instructions[model] = instructions.get(model, 0) + count
        seconds[model] = seconds.get(model, 0.0) + best
    return {
        model: round(instructions[model] / seconds[model])
        for model in instructions
        if seconds.get(model)
    }


def _batched_block(report: dict) -> dict | None:
    """The record's ``batched`` block (PR 6 schema), or ``None`` for
    records that predate the batched engine or carry a malformed block —
    old-schema records must keep diffing cleanly."""
    block = report.get("batched")
    if not isinstance(block, dict):
        return None
    if not isinstance(block.get("grid_speedup"), (int, float)):
        return None
    return block


def batched_rows(new: dict, baseline: dict) -> list[tuple[str, object, object]]:
    """Rows of (label, fresh ratio, committed ratio) for the paired
    scalar-vs-batched aggregates.  Empty when the fresh record has no
    batched block.  Each ratio is scalar seconds / batched seconds for
    the same grid on the same host — the only batched number that is
    comparable across records.
    """
    fresh = _batched_block(new)
    if fresh is None:
        return []
    committed = _batched_block(baseline) or {}
    rows = [
        (
            f"full grid ({fresh.get('grid_lanes', '?')} lanes)",
            fresh.get("grid_speedup"),
            committed.get("grid_speedup"),
        )
    ]
    if "itiming_speedup" in fresh:
        rows.append(
            (
                f"I-timing subset ({fresh.get('itiming_lanes', '?')} lanes)",
                fresh.get("itiming_speedup"),
                committed.get("itiming_speedup"),
            )
        )
    return rows


def _specialized_block(report: dict) -> dict | None:
    """The record's ``specialized`` block (PR 7 schema), or ``None`` for
    records that predate engine specialization or carry a malformed
    block — old-schema records must keep diffing cleanly."""
    block = report.get("specialized")
    if not isinstance(block, dict):
        return None
    if not isinstance(block.get("grid_speedup"), (int, float)):
        return None
    return block


def specialized_rows(
    new: dict, baseline: dict
) -> list[tuple[str, object, object]]:
    """Rows of (label, fresh ratio, committed ratio) for the paired
    generic-vs-specialized aggregates.  Empty when the fresh record has
    no specialized block.  Each ratio is generic seconds / specialized
    seconds for the same grid on the same host — the only specialized
    number that is comparable across records.
    """
    fresh = _specialized_block(new)
    if fresh is None:
        return []
    committed = _specialized_block(baseline) or {}
    return [
        (
            f"full grid ({fresh.get('grid_lanes', '?')} lanes)",
            fresh.get("grid_speedup"),
            committed.get("grid_speedup"),
        )
    ]


def _service_block(report: dict) -> dict | None:
    """The record's ``service`` block (SLO summary written by
    ``scripts/service_load.py``), or ``None`` for records that predate
    the simulation service or carry a malformed block — old-schema
    records must keep diffing cleanly."""
    block = report.get("service")
    if not isinstance(block, dict):
        return None
    if not isinstance(block.get("p50_ms"), (int, float)):
        return None
    return block


def service_rows(new: dict, baseline: dict) -> list[tuple[str, object, object]]:
    """Rows of (metric label, fresh value, committed value) for the
    service SLO block.  Empty when the fresh record has no service
    block; a committed record without one renders "-" cells.
    """
    fresh = _service_block(new)
    if fresh is None:
        return []
    committed = _service_block(baseline) or {}
    rows: list[tuple[str, object, object]] = []
    for field, label in (
        ("p50_ms", "latency p50 (ms)"),
        ("p95_ms", "latency p95 (ms)"),
        ("p99_ms", "latency p99 (ms)"),
        ("throughput_rps", "throughput (req/s)"),
        ("warm_hit_ratio", "warm-hit ratio"),
        ("saturation_clients", "saturation point (clients)"),
    ):
        value = fresh.get(field)
        if not isinstance(value, (int, float)):
            continue
        rows.append((label, value, committed.get(field)))
    return rows


def _sampled_block(report: dict) -> dict | None:
    """The record's ``sampled`` block (PR 9 schema: phase-sampled vs
    exact on long workloads), or ``None`` for records that predate the
    streaming trace plane or carry a malformed block — old-schema
    records must keep diffing cleanly."""
    block = report.get("sampled")
    if not isinstance(block, dict):
        return None
    if not isinstance(block.get("workloads"), dict):
        return None
    return block


def sampled_rows(new: dict, baseline: dict) -> list[tuple[str, str, str]]:
    """Rows of (label, fresh cell, committed cell) for the sampled-vs-
    exact record: per workload, the CPI error (host-independent, the
    number that must stay small) and the wall-clock speedup (same-host
    paired ratio).  Empty when the fresh record has no sampled block;
    a committed record without one renders "-" cells.
    """
    fresh = _sampled_block(new)
    if fresh is None:
        return []
    committed = _sampled_block(baseline) or {"workloads": {}}
    rows: list[tuple[str, str, str]] = []
    for name, result in fresh["workloads"].items():
        if not isinstance(result, dict):
            continue
        old = committed["workloads"].get(name)
        old = old if isinstance(old, dict) else {}
        error = result.get("cpi_error")
        if isinstance(error, (int, float)):
            old_error = old.get("cpi_error")
            rows.append(
                (
                    f"{name} CPI error",
                    f"{error:.2%}",
                    f"{old_error:.2%}"
                    if isinstance(old_error, (int, float))
                    else "-",
                )
            )
        speedup = result.get("speedup")
        if isinstance(speedup, (int, float)):
            old_speedup = old.get("speedup")
            rows.append(
                (
                    f"{name} speedup",
                    f"{speedup:.1f}x",
                    f"{old_speedup:.1f}x"
                    if isinstance(old_speedup, (int, float))
                    else "-",
                )
            )
    return rows


def _ablation_block(report: dict) -> dict | None:
    """The record's ablation importance block, or ``None`` for records
    that predate the ablation framework or carry a malformed block —
    old-schema records must keep diffing cleanly.

    Two shapes are accepted: a throughput record embedding the compact
    block under ``"ablation"`` (``repro.ablation.report.report_record``),
    and a standalone ablation report (``kind == "ablation"``) whose
    ranked ``components`` list is reduced to the same compact shape.
    """
    block = report.get("ablation")
    if isinstance(block, dict) and isinstance(block.get("importance"), dict):
        importance = {
            name: value
            for name, value in block["importance"].items()
            if isinstance(value, (int, float))
        }
        if importance:
            return {
                "importance": importance,
                "baseline_speedup": block.get("baseline_speedup"),
                "harmful": [
                    str(name)
                    for name in block.get("harmful", [])
                    if isinstance(name, str)
                ]
                if isinstance(block.get("harmful"), list)
                else [],
            }
        return None
    if report.get("kind") != "ablation":
        return None
    components = report.get("components")
    if not isinstance(components, list):
        return None
    importance = {}
    harmful = []
    for entry in components:
        if not isinstance(entry, dict):
            continue
        names = entry.get("components")
        value = entry.get("importance")
        if not isinstance(names, list) or not isinstance(value, (int, float)):
            continue
        label = "+".join(str(name) for name in names)
        importance[label] = value
        if entry.get("harmful"):
            harmful.append(label)
    if not importance:
        return None
    baseline = report.get("baseline")
    baseline_speedup = (
        baseline.get("speedup") if isinstance(baseline, dict) else None
    )
    return {
        "importance": importance,
        "baseline_speedup": baseline_speedup,
        "harmful": harmful,
    }


def ablation_rows(new: dict, baseline: dict) -> list[tuple[str, str, str]]:
    """Rows of (component, fresh cell, committed cell) for the ablation
    importance block, ranked by fresh importance.  Importance deltas are
    host-independent (they are ratios of deterministic cycle counts), so
    fresh-vs-committed drift here means the *model* changed, not the
    machine.  Empty when the fresh record has no ablation block; a
    committed record without one renders "-" cells.
    """
    fresh = _ablation_block(new)
    if fresh is None:
        return []
    committed = _ablation_block(baseline) or {"importance": {}, "harmful": []}
    rows: list[tuple[str, str, str]] = []
    speedup = fresh.get("baseline_speedup")
    if isinstance(speedup, (int, float)):
        old_speedup = committed.get("baseline_speedup")
        rows.append(
            (
                "baseline speedup",
                f"{speedup:.4f}",
                f"{old_speedup:.4f}"
                if isinstance(old_speedup, (int, float))
                else "-",
            )
        )
    ranked = sorted(
        fresh["importance"].items(), key=lambda item: item[1], reverse=True
    )
    for name, value in ranked:
        flag = " [HARMFUL]" if name in fresh["harmful"] else ""
        old_value = committed["importance"].get(name)
        rows.append(
            (
                f"{name}{flag}",
                f"{value:+.4f}",
                f"{old_value:+.4f}"
                if isinstance(old_value, (int, float))
                else "-",
            )
        )
    return rows


def _service_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, int):
        return str(value)
    return "-"


def dirty_warnings(new: dict, baseline: dict) -> list[str]:
    """Warnings for records whose revision does not identify the code.

    A ``-dirty`` suffix means the benchmark ran on a tree with
    uncommitted changes, so the recorded numbers cannot be attributed to
    the named commit; an ``unknown`` revision means git was unavailable.
    Either way the record is still diffable — the warning asks for a
    regeneration, it does not block.
    """
    warnings = []
    for label, record in (("fresh", new), ("committed baseline", baseline)):
        revision = str(record.get("git_revision", ""))
        if revision.endswith("-dirty"):
            warnings.append(
                f"warning: the {label} record was generated from a dirty "
                f"tree ({revision}); regenerate it from a clean checkout "
                "so its revision identifies the measured code"
            )
        elif revision in ("", "unknown"):
            warnings.append(
                f"warning: the {label} record has no git revision; "
                "regenerate it inside the repository so the measurement "
                "is attributable"
            )
    return warnings


def diff(new: dict, baseline: dict) -> list[tuple[str, int | None, int, float | None]]:
    """Rows of (model, baseline ips, new ips, ratio)."""
    new_aggregates = _model_aggregates(new)
    base_aggregates = _model_aggregates(baseline)
    rows = []
    for model, new_ips in new_aggregates.items():
        old_ips = base_aggregates.get(model)
        ratio = new_ips / old_ips if old_ips else None
        rows.append((model, old_ips, new_ips, ratio))
    return rows


def render_text(rows, new: dict, baseline: dict) -> str:
    lines = [
        f"engine throughput: {new.get('git_revision', '?')} vs "
        f"committed {baseline.get('git_revision', '?')}",
        f"{'model':8s} {'committed':>12s} {'new':>12s} {'ratio':>8s}",
    ]
    for model, old_ips, new_ips, ratio in rows:
        old_text = f"{old_ips:,}" if old_ips else "-"
        ratio_text = f"{ratio:.3f}" if ratio else "-"
        lines.append(f"{model:8s} {old_text:>12s} {new_ips:>12,} {ratio_text:>8s}")
    speedups = batched_rows(new, baseline)
    if speedups:
        lines.append("batched engine (paired scalar/batched, same host):")
        for label, fresh, committed in speedups:
            committed_text = (
                f"{committed:.3f}x" if committed is not None else "-"
            )
            lines.append(
                f"  {label:28s} {fresh:.3f}x  (committed: {committed_text})"
            )
    paired = specialized_rows(new, baseline)
    if paired:
        lines.append(
            "specialized engine (paired generic/specialized, same host):"
        )
        for label, fresh, committed in paired:
            committed_text = (
                f"{committed:.3f}x" if committed is not None else "-"
            )
            lines.append(
                f"  {label:28s} {fresh:.3f}x  (committed: {committed_text})"
            )
    slo = service_rows(new, baseline)
    if slo:
        lines.append("service SLO (scripts/service_load.py, same host):")
        for label, fresh, committed in slo:
            lines.append(
                f"  {label:28s} {_service_cell(fresh):>10s}  "
                f"(committed: {_service_cell(committed)})"
            )
    sampled = sampled_rows(new, baseline)
    if sampled:
        lines.append(
            "phase-sampled vs exact (error is host-independent, "
            "speedup is a same-host paired ratio):"
        )
        for label, fresh, committed in sampled:
            lines.append(
                f"  {label:28s} {fresh:>10s}  (committed: {committed})"
            )
    ablation = ablation_rows(new, baseline)
    if ablation:
        lines.append(
            "ablation importance (speedup lost when the component is "
            "lesioned; host-independent):"
        )
        for label, fresh, committed in ablation:
            lines.append(
                f"  {label:36s} {fresh:>10s}  (committed: {committed})"
            )
    lines.append(
        "(ips are host-dependent; ratios across different machines are "
        "indicative only)"
    )
    return "\n".join(lines)


def render_markdown(rows, new: dict, baseline: dict) -> str:
    lines = [
        "### Engine throughput vs committed record",
        "",
        f"`{new.get('git_revision', '?')}` vs committed "
        f"`{baseline.get('git_revision', '?')}` "
        f"(trace limit {new.get('trace_limit', '?')}, "
        f"best-of-{new.get('reps_best_of', '?')} process time)",
        "",
        "| model | committed ips | new ips | ratio |",
        "|---|---:|---:|---:|",
    ]
    for model, old_ips, new_ips, ratio in rows:
        old_text = f"{old_ips:,}" if old_ips else "–"
        ratio_text = f"{ratio:.3f}" if ratio else "–"
        lines.append(f"| {model} | {old_text} | {new_ips:,} | {ratio_text} |")
    speedups = batched_rows(new, baseline)
    if speedups:
        lines += [
            "",
            "**Batched engine** (paired scalar/batched on the runner — "
            "host effects cancel):",
            "",
            "| aggregate | fresh | committed |",
            "|---|---:|---:|",
        ]
        for label, fresh, committed in speedups:
            committed_text = (
                f"{committed:.3f}x" if committed is not None else "–"
            )
            lines.append(f"| {label} | {fresh:.3f}x | {committed_text} |")
    paired = specialized_rows(new, baseline)
    if paired:
        lines += [
            "",
            "**Specialized engine** (paired generic/specialized on the "
            "runner — host effects cancel):",
            "",
            "| aggregate | fresh | committed |",
            "|---|---:|---:|",
        ]
        for label, fresh, committed in paired:
            committed_text = (
                f"{committed:.3f}x" if committed is not None else "–"
            )
            lines.append(f"| {label} | {fresh:.3f}x | {committed_text} |")
    slo = service_rows(new, baseline)
    if slo:
        lines += [
            "",
            "**Simulation service SLO** (scripts/service_load.py on the "
            "runner — absolute numbers are host-dependent):",
            "",
            "| metric | fresh | committed |",
            "|---|---:|---:|",
        ]
        for label, fresh, committed in slo:
            lines.append(
                f"| {label} | {_service_cell(fresh)} | "
                f"{_service_cell(committed)} |"
            )
    sampled = sampled_rows(new, baseline)
    if sampled:
        lines += [
            "",
            "**Phase-sampled vs exact** (CPI error is host-independent; "
            "the speedup is a same-host paired ratio that grows with "
            "trace length):",
            "",
            "| workload metric | fresh | committed |",
            "|---|---:|---:|",
        ]
        for label, fresh, committed in sampled:
            lines.append(f"| {label} | {fresh} | {committed} |")
    ablation = ablation_rows(new, baseline)
    if ablation:
        lines += [
            "",
            "**Ablation importance** (harmonic-mean speedup lost when "
            "the component is lesioned — deterministic cycle ratios, "
            "host-independent):",
            "",
            "| component | fresh | committed |",
            "|---|---:|---:|",
        ]
        for label, fresh, committed in ablation:
            lines.append(f"| {label} | {fresh} | {committed} |")
    lines += [
        "",
        "_ips are host-dependent; this check is informational, not a gate._",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("new", help="freshly generated BENCH_engine_perf.json")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline record (default: `git show HEAD:{_RECORD}`)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit a GitHub step summary"
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 when any per-model ratio drops below RATIO",
    )
    args = parser.parse_args(argv)

    new = _load_record(args.new)
    if new is None:
        print("no fresh record to diff; skipping")
        return 0
    if args.baseline is not None:
        baseline = _load_record(args.baseline)
    else:
        baseline = _committed_record()
    if baseline is None:
        print(f"no committed {_RECORD} to diff against; skipping")
        return 0
    if not _model_aggregates(baseline):
        print(
            f"committed {_RECORD} has no usable per-model aggregates "
            "(older schema?); skipping"
        )
        return 0

    rows = diff(new, baseline)
    warnings = dirty_warnings(new, baseline)
    if args.markdown:
        body = render_markdown(rows, new, baseline)
        if warnings:
            body += "\n\n" + "\n".join(f"> ⚠️ {w}" for w in warnings)
        print(body)
    else:
        print(render_text(rows, new, baseline))
        for warning in warnings:
            print(warning, file=sys.stderr)

    if args.fail_below is not None:
        failing = [r for r in rows if r[3] is not None and r[3] < args.fail_below]
        if failing:
            print(
                f"ratio below {args.fail_below} for: "
                + ", ".join(model for model, *_ in failing),
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
