#!/usr/bin/env python3
"""Ablation smoke check (the CI `ablation-smoke` job, runnable locally).

Runs the tiny default leave-one-out ablation (``micro:fib``, 8/48,
great model, D/R, 3000 instructions) and asserts:

1. the baseline run is **bit-identical** to the committed golden
   snapshot (``tests/golden/micro_fib.json``) — every counter of both
   the base-machine and speculative runs;
2. the JSON report validates against the v1 ablation schema and ranks
   at least six registered components;
3. run IDs are stable: planning the same spec twice (second time from
   a registry rebuilt from scratch) yields byte-identical IDs;
4. warm re-run: with a result store configured, executing the same plan
   a second time recomputes **zero** jobs — every point is served from
   the store;
5. engine-feature lesions (batching, specialization) landed at exactly
   0.0 importance with no bit-identity mismatches.

Exit status is the check result; the JSON/CSV reports are left in
``--out-dir`` for upload as a build artifact.

Usage::

    PYTHONPATH=src python scripts/ablation_smoke.py [--out-dir ablation-artifacts]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from dataclasses import fields
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_GOLDEN = _REPO_ROOT / "tests" / "golden" / "micro_fib.json"


def _counters_dict(counters) -> dict:
    return {
        f.name: getattr(counters, f.name)
        for f in fields(counters)
        if f.name != "extra"
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="ablation-artifacts")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    from repro.ablation import (
        AblationPoint,
        AblationSpec,
        build_report,
        default_registry,
        execute_plan,
        plan_ablation,
        render_csv,
        render_text,
        validate_report,
        verify_engine_identity,
        write_report,
    )
    from repro.core.model import GREAT_MODEL
    from repro.engine.config import paper_config

    failures: list[str] = []

    spec = AblationSpec(
        benchmarks=("micro:fib",),
        point=AblationPoint(config=paper_config("8/48"), model=GREAT_MODEL),
        max_instructions=3000,
    )
    plan = plan_ablation(spec)
    replanned = plan_ablation(spec, default_registry())
    if [run.run_id for run in plan.runs] != [
        run.run_id for run in replanned.runs
    ]:
        failures.append("run IDs differ between two plannings of the same spec")

    executed = execute_plan(plan, jobs=args.jobs)
    mismatches = verify_engine_identity(executed)
    failures.extend(f"engine identity: {m}" for m in mismatches)

    # Bit-identity of the baseline run against the committed golden
    # snapshot — the same (kernel, config, model, D/R, limit) point the
    # tier-1 golden test pins.
    golden = json.loads(_GOLDEN.read_text())
    baseline = executed[0]
    base_counters = _counters_dict(baseline.base_results[0].counters)
    vp_counters = _counters_dict(baseline.results[0].counters)
    if base_counters != golden["base"]:
        failures.append("baseline base-machine counters diverge from golden")
    if vp_counters != golden["vp"]:
        failures.append("baseline speculative counters diverge from golden")

    report = build_report(plan, executed, engine_mismatches=mismatches)
    try:
        validate_report(report)
    except ValueError as error:
        failures.append(f"report schema: {error}")
    if len(report["components"]) < 6:
        failures.append(
            f"only {len(report['components'])} components ranked; need >= 6"
        )
    for entry in report["components"]:
        if entry["engine"] and entry["importance"] != 0.0:
            failures.append(
                f"engine component {entry['label']} importance "
                f"{entry['importance']} != 0.0"
            )

    # Warm re-run through the result store: the second execution of the
    # identical plan must compute nothing.
    import repro.harness.parallel as parallel

    with tempfile.TemporaryDirectory(prefix="ablation-smoke-store-") as store:
        previous = os.environ.get("REPRO_RESULT_STORE")
        os.environ["REPRO_RESULT_STORE"] = store
        real_backend = parallel._run_jobs_backend
        computed = {"jobs": 0}

        def counting_backend(job_list, *a, **kw):
            computed["jobs"] += len(job_list)
            return real_backend(job_list, *a, **kw)

        parallel._run_jobs_backend = counting_backend
        try:
            execute_plan(plan, jobs=args.jobs)
            cold_jobs = computed["jobs"]
            computed["jobs"] = 0
            warm = execute_plan(plan, jobs=args.jobs)
            warm_jobs = computed["jobs"]
        finally:
            parallel._run_jobs_backend = real_backend
            if previous is None:
                del os.environ["REPRO_RESULT_STORE"]
            else:
                os.environ["REPRO_RESULT_STORE"] = previous
        if warm_jobs != 0:
            failures.append(
                f"warm re-run computed {warm_jobs} job(s); expected 0"
            )
        if cold_jobs == 0:
            failures.append("cold run computed no jobs — store check is vacuous")
        warm_counters = _counters_dict(warm[0].results[0].counters)
        if warm_counters != golden["vp"]:
            failures.append("store-served baseline diverges from golden")

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = write_report(report, out_dir / "ablation_report.json")
    (out_dir / "ablation_report.csv").write_text(render_csv(report) + "\n")

    print(render_text(report))
    print()
    print(f"report: {json_path}")
    print(
        f"cold run computed {cold_jobs} job(s); warm re-run computed "
        f"{warm_jobs}"
    )

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as handle:
            handle.write("### Ablation smoke\n\n```\n")
            handle.write(render_text(report))
            handle.write("\n```\n")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ablation smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
