"""Compare two full-results JSON files (regression diffing).

Usage:  python scripts/compare_runs.py old.json new.json [--threshold 0.01]

Prints per-cell Figure 3 speedup deltas exceeding the threshold and the
Figure 4 accuracy drift, exiting nonzero when anything moved.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _grid(results: dict) -> dict:
    return {
        (c["config"], c["setting"], c["model"]): c["speedup"]
        for c in results.get("figure3", [])
    }


def compare(old: dict, new: dict, threshold: float) -> list[str]:
    """Return human-readable difference lines exceeding ``threshold``."""
    diffs: list[str] = []
    old_grid, new_grid = _grid(old), _grid(new)
    for key in sorted(set(old_grid) | set(new_grid)):
        a, b = old_grid.get(key), new_grid.get(key)
        if a is None or b is None:
            diffs.append(f"figure3 {key}: only in {'new' if a is None else 'old'}")
        elif abs(a - b) > threshold:
            diffs.append(f"figure3 {key}: {a:.4f} -> {b:.4f} ({b - a:+.4f})")
    old_f4 = {(c["config"], c["timing"]): c for c in old.get("figure4", [])}
    new_f4 = {(c["config"], c["timing"]): c for c in new.get("figure4", [])}
    for key in sorted(set(old_f4) | set(new_f4)):
        a, b = old_f4.get(key), new_f4.get(key)
        if a is None or b is None:
            diffs.append(f"figure4 {key}: only in {'new' if a is None else 'old'}")
            continue
        for field in ("CH", "CL", "IH", "IL"):
            if abs(a[field] - b[field]) > threshold:
                diffs.append(
                    f"figure4 {key} {field}: {a[field]:.4f} -> {b[field]:.4f}"
                )
    return diffs


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=0.01)
    args = parser.parse_args()
    old = json.loads(Path(args.old).read_text())
    new = json.loads(Path(args.new).read_text())
    diffs = compare(old, new, args.threshold)
    if not diffs:
        print(f"no differences above {args.threshold}")
        return 0
    for line in diffs:
        print(line)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
