#!/usr/bin/env python3
"""Warm-vs-cold sweep smoke (the CI `perf-smoke` warm step, runnable locally).

Runs the same small sweep grid twice against a fresh private trace
cache:

1. **Cold** — captures each distinct (benchmark, limit) trace exactly
   once and populates the VSRT v3 cache.
2. **Warm, fanned** — re-runs the grid with ``--jobs N`` workers under
   ``REPRO_TRACE_STRICT=1``, so any worker that would fall back to
   functional capture *fails the run* instead: the sweep completing is
   the proof that warm sweeps perform **zero trace regenerations**
   (workers are served entirely from mmap'd cache entries).

The script also asserts the warm results are bit-identical to the cold
ones, counts functional-simulator captures directly (the cold run must
capture once per benchmark, the warm run zero times in the parent), and
reports wall time plus peak RSS (parent and worker maxima) — appended
to ``$GITHUB_STEP_SUMMARY`` as a markdown table when that variable is
set.  Exit status is the check result.

Usage::

    PYTHONPATH=src python scripts/warm_sweep_smoke.py [--jobs 4]
"""

from __future__ import annotations

import argparse
import os
import resource
import sys
import tempfile
import time
from pathlib import Path


def _peak_rss_mib() -> tuple[float, float]:
    """(parent, worker-max) peak RSS in MiB.  ``ru_maxrss`` is KiB on
    Linux; RUSAGE_CHILDREN covers the reaped pool workers."""
    scale = 1024.0  # KiB -> MiB
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / scale
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / scale
    return own, children


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--benchmarks", nargs="+", default=["compress", "m88ksim", "perl"]
    )
    parser.add_argument("--max-instructions", type=int, default=1500)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="trace cache directory (default: a fresh temp dir, so the "
        "first pass is genuinely cold)",
    )
    args = parser.parse_args(argv)

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-warm-smoke-")
    os.environ["REPRO_TRACE_CACHE"] = cache_dir
    os.environ.pop("REPRO_TRACE_STRICT", None)

    from repro.core.model import GOOD_MODEL, GREAT_MODEL
    from repro.engine.config import ProcessorConfig
    from repro.harness import parallel
    from repro.programs.suite import KernelSpec

    captures = {"count": 0}
    original_trace = KernelSpec.trace

    def counting_trace(self, max_instructions=None):
        captures["count"] += 1
        return original_trace(self, max_instructions)

    KernelSpec.trace = counting_trace

    config = ProcessorConfig(issue_width=4, window_size=24)
    jobs = [
        parallel.SimJob(name, config, model, args.max_instructions)
        for name in args.benchmarks
        for model in (None, GREAT_MODEL, GOOD_MODEL)
    ]

    status = 0

    start = time.perf_counter()
    cold = parallel.run_jobs(jobs, jobs=1)
    cold_seconds = time.perf_counter() - start
    cold_captures = captures["count"]
    if cold_captures != len(args.benchmarks):
        print(
            f"FAIL: cold sweep captured {cold_captures} traces, expected "
            f"one per benchmark ({len(args.benchmarks)})"
        )
        status = 1

    # A new sweep process would start with an empty per-process memo;
    # clear it so the warm pass exercises the staging tiers, not the memo.
    parallel._TRACE_CACHE.clear()
    os.environ["REPRO_TRACE_STRICT"] = "1"
    start = time.perf_counter()
    try:
        warm = parallel.run_jobs(jobs, jobs=args.jobs)
    except Exception as exc:
        print(f"FAIL: warm sweep regenerated a trace: {exc}")
        return 1
    warm_seconds = time.perf_counter() - start
    warm_captures = captures["count"] - cold_captures
    if warm_captures:
        print(f"FAIL: warm sweep captured {warm_captures} traces in the parent")
        status = 1

    if [r.counters for r in warm] != [r.counters for r in cold] or [
        r.cycles for r in warm
    ] != [r.cycles for r in cold]:
        print("FAIL: warm fanned results differ from cold inline results")
        status = 1

    own_rss, worker_rss = _peak_rss_mib()
    entries = sorted(Path(cache_dir).glob("*.vsrt3"))
    cache_bytes = sum(path.stat().st_size for path in entries)

    rows = [
        ("grid points", str(len(jobs))),
        ("cold (jobs=1, capture+store)", f"{cold_seconds:.2f} s"),
        (f"warm (jobs={args.jobs}, strict)", f"{warm_seconds:.2f} s"),
        ("cold captures", str(cold_captures)),
        ("warm captures (must be 0)", str(warm_captures)),
        ("cache entries", f"{len(entries)} ({cache_bytes:,} bytes)"),
        ("peak RSS, parent", f"{own_rss:.1f} MiB"),
        ("peak RSS, worker max", f"{worker_rss:.1f} MiB"),
        ("result", "ok" if status == 0 else "FAIL"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"{label:<{width}}  {value}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        lines = [
            "### Warm-sweep smoke (zero trace regenerations)",
            "",
            "| check | value |",
            "|---|---|",
        ]
        lines += [f"| {label} | {value} |" for label, value in rows]
        lines.append("")
        with open(summary_path, "a") as handle:
            handle.write("\n".join(lines) + "\n")

    return status


if __name__ == "__main__":
    sys.exit(main())
