#!/usr/bin/env python3
"""Batched-engine smoke (the CI `batched-smoke` step, runnable locally).

Runs a small Figure 3 grid twice through the public harness entry point:

1. **Scalar** — ``run_figure3(batch=1)``, one engine pass per grid
   point (the per-point path every earlier PR measured).
2. **Batched** — ``run_figure3(batch=0)``, the planner groups each
   (benchmark, trace-limit) family into one batch that shares the
   recorded fetch stream (and, on immediate-timing lanes, the recorded
   value-prediction columns — see docs/PERFORMANCE.md section 8).

The step asserts the two runs produce **bit-identical merged results**
— every Figure3Cell, including the per-benchmark speedup dicts — and
reports the paired wall-clock ratio, appended to
``$GITHUB_STEP_SUMMARY`` as a markdown table when that variable is set.
The ratio is informational (CI runners are too noisy for a hard perf
gate); bit-identity is the check.  Exit status is the check result.

Usage::

    PYTHONPATH=src python scripts/batched_smoke.py [--jobs 1]
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--benchmarks", nargs="+", default=["compress", "m88ksim", "perl"]
    )
    parser.add_argument("--max-instructions", type=int, default=1500)
    args = parser.parse_args(argv)

    from repro.engine.config import ProcessorConfig
    from repro.harness.figure3 import run_figure3

    configs = (
        ProcessorConfig(issue_width=4, window_size=24),
        ProcessorConfig(issue_width=8, window_size=48),
    )
    kwargs = dict(
        max_instructions=args.max_instructions,
        benchmarks=args.benchmarks,
        configs=configs,
        jobs=args.jobs,
    )

    start = time.perf_counter()
    scalar = run_figure3(batch=1, **kwargs)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = run_figure3(batch=0, **kwargs)
    batched_seconds = time.perf_counter() - start

    status = 0
    if len(scalar) != len(batched):
        print(f"FAIL: cell counts differ ({len(scalar)} vs {len(batched)})")
        status = 1
    else:
        for cell_s, cell_b in zip(scalar, batched):
            if cell_s != cell_b or cell_s.per_benchmark != cell_b.per_benchmark:
                print(
                    "FAIL: batched cell differs from scalar: "
                    f"{cell_b} vs {cell_s}"
                )
                status = 1

    lanes = len(args.benchmarks) * len(configs) * (1 + 4 * 3)
    speedup = scalar_seconds / batched_seconds if batched_seconds else 0.0
    rows = [
        ("grid lanes", str(lanes)),
        ("figure3 cells", str(len(scalar))),
        (f"scalar (batch=1, jobs={args.jobs})", f"{scalar_seconds:.2f} s"),
        (f"batched (batch=0, jobs={args.jobs})", f"{batched_seconds:.2f} s"),
        ("paired speedup (informational)", f"{speedup:.3f}x"),
        ("merged results bit-identical", "yes" if status == 0 else "NO"),
        ("result", "ok" if status == 0 else "FAIL"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"{label:<{width}}  {value}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        lines = [
            "### Batched-engine smoke (bit-identity + paired speedup)",
            "",
            "| check | value |",
            "|---|---|",
        ]
        lines += [f"| {label} | {value} |" for label, value in rows]
        lines.append("")
        with open(summary_path, "a") as handle:
            handle.write("\n".join(lines) + "\n")

    return status


if __name__ == "__main__":
    sys.exit(main())
