"""Profile one engine run and print the hottest functions.

The cycle engine is pure Python, so its throughput lives and dies by
per-call overhead; this wrapper makes the profile one command away:

    PYTHONPATH=src python scripts/profile_engine.py
    PYTHONPATH=src python scripts/profile_engine.py \
        --benchmark perl --config 4/24 --model none --sort tottime
    PYTHONPATH=src python scripts/profile_engine.py --no-specialize
    PYTHONPATH=src python scripts/profile_engine.py --batch

All three engine paths are profileable: the scalar config-specialized
path (the default), the scalar generic path (``--no-specialize``), and
the batched multi-config path (``--batch``, one ``run_batch`` call over
a baseline lane plus the model's four timing x confidence lanes).  The
run is profiled once under :mod:`cProfile` and printed three ways — a
per-stage cumulative-time table over the pipeline's stage methods
(specialized methods live under synthetic ``<specialized:…>``
filenames but keep their names, so the table compares directly across
engine paths), then the top rows by cumulative time (where the cycles
go) and by internal time (which bodies to inline next).
docs/PERFORMANCE.md records the findings this view produced.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys

#: Stage methods worth a dedicated table row whichever engine emitted
#: them — a superset of repro.engine.templates.STAGE_METHODS plus the
#: hot helpers the specializer leaves generic.
STAGE_ROWS = (
    "run",
    "_fetch",
    "_dispatch",
    "_predict_value",
    "_predict_value_fast",
    "_issue",
    "_try_load_access",
    "_start_execution",
    "_process_events",
    "_on_result",
    "_broadcast",
    "_on_equality",
    "_on_verify",
    "_verify_parallel",
    "_verify_hierarchical",
    "_verify_retirement_based",
    "_clear_taints",
    "_on_invalidate",
    "_apply_invalidation",
    "_retire",
    "_squash_younger",
)


def print_stage_table(stats: pstats.Stats, top: int) -> None:
    """Cumulative/internal time per pipeline stage method, summed over
    every code object with that name — generic ``pipeline.py`` frames
    and generated ``<specialized:…>`` frames alike."""
    rows: dict[str, tuple[int, float, float, set[str]]] = {}
    for (filename, _line, funcname), entry in stats.stats.items():
        if funcname not in STAGE_ROWS:
            continue
        _cc, ncalls, tottime, cumtime, _callers = entry
        calls, tot, cum, origins = rows.get(funcname, (0, 0.0, 0.0, set()))
        origins.add(
            "specialized" if filename.startswith("<specialized") else "generic"
        )
        rows[funcname] = (calls + ncalls, tot + tottime, cum + cumtime, origins)
    if not rows:
        return
    print(f"=== per-stage cumulative time (top {top}) ===")
    print(
        f"{'stage method':26s} {'ncalls':>10s} {'tottime':>9s} "
        f"{'cumtime':>9s}  origin"
    )
    ranked = sorted(rows.items(), key=lambda item: -item[1][2])[:top]
    for funcname, (calls, tot, cum, origins) in ranked:
        print(
            f"{funcname:26s} {calls:>10d} {tot:>9.3f} {cum:>9.3f}  "
            f"{'+'.join(sorted(origins))}"
        )
    print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile one cycle-engine simulation"
    )
    parser.add_argument("--benchmark", default="m88ksim")
    parser.add_argument("--config", default="8/48", help="4/24 | 8/48 | 16/96")
    parser.add_argument(
        "--model", default="great", help="super | great | good | none"
    )
    parser.add_argument("--max-instructions", type=int, default=20000)
    parser.add_argument("--confidence", default="real", help="real | oracle")
    parser.add_argument("--timing", default="I", help="I | D")
    parser.add_argument(
        "--batch",
        action="store_true",
        help=(
            "profile the batched engine: one run_batch call over a "
            "baseline lane plus the model's four timing x confidence lanes"
        ),
    )
    parser.add_argument(
        "--specialize",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "use the config-specialized engine (--no-specialize profiles "
            "the generic interpreter path; applies to --batch lanes too)"
        ),
    )
    parser.add_argument(
        "--top", type=int, default=20, help="rows per ranking (default 20)"
    )
    parser.add_argument(
        "--sort",
        default=None,
        choices=("cumulative", "tottime", "ncalls"),
        help="print a single ranking instead of cumulative + tottime",
    )
    parser.add_argument(
        "--out", default=None, help="also dump raw stats to this file"
    )
    args = parser.parse_args(argv)

    from repro.core.model import named_models
    from repro.engine.config import paper_config
    from repro.engine.sim import run_baseline, run_trace
    from repro.engine.specialize import SPECIALIZE_ENV_VAR
    from repro.programs.suite import kernel

    if not args.specialize:
        # Exported through the environment (not a kwarg) so the batched
        # path's lanes see the same engine choice as direct calls.
        os.environ[SPECIALIZE_ENV_VAR] = "0"

    config = paper_config(args.config)
    trace = kernel(args.benchmark).trace(args.max_instructions)
    model = None if args.model == "none" else named_models()[args.model]
    if args.batch:
        from repro.engine.batched import run_batch
        from repro.harness.parallel import SimJob

        jobs = [
            SimJob(
                benchmark=args.benchmark,
                config=config,
                max_instructions=args.max_instructions,
            )
        ]
        if model is not None:
            jobs += [
                SimJob(
                    benchmark=args.benchmark,
                    config=config,
                    model=model,
                    max_instructions=args.max_instructions,
                    confidence=conf,
                    update_timing=timing,
                )
                for timing in ("I", "D")
                for conf in ("R", "O")
            ]

        def simulate():
            return run_batch(jobs, trace)[-1]

    elif model is None:
        def simulate():
            return run_baseline(trace, config)
    else:
        def simulate():
            return run_trace(
                trace,
                config,
                model,
                confidence=args.confidence,
                update_timing=args.timing,
            )

    profiler = cProfile.Profile()
    result = profiler.runcall(simulate)
    print(
        f"{args.benchmark} @ {config.label}, model={args.model}, "
        f"engine={result.engine_path or 'generic'}: "
        f"{result.counters.retired} instructions in "
        f"{result.counters.cycles} cycles\n"
    )

    stats = pstats.Stats(profiler, stream=sys.stdout)
    print_stage_table(stats, args.top)
    stats.strip_dirs()
    for sort in (args.sort,) if args.sort else ("cumulative", "tottime"):
        print(f"=== top {args.top} by {sort} ===")
        stats.sort_stats(sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw stats written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
