"""Profile one engine run and print the hottest functions.

The cycle engine is pure Python, so its throughput lives and dies by
per-call overhead; this wrapper makes the profile one command away:

    PYTHONPATH=src python scripts/profile_engine.py
    PYTHONPATH=src python scripts/profile_engine.py \
        --benchmark perl --config 4/24 --model none --sort tottime

It runs the selected simulation once under :mod:`cProfile` and prints
the top rows twice — by cumulative time (where the cycles go) and by
internal time (which bodies to inline next).  docs/PERFORMANCE.md
records the findings this view produced.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile one cycle-engine simulation"
    )
    parser.add_argument("--benchmark", default="m88ksim")
    parser.add_argument("--config", default="8/48", help="4/24 | 8/48 | 16/96")
    parser.add_argument(
        "--model", default="great", help="super | great | good | none"
    )
    parser.add_argument("--max-instructions", type=int, default=20000)
    parser.add_argument("--confidence", default="real", help="real | oracle")
    parser.add_argument("--timing", default="I", help="I | D")
    parser.add_argument(
        "--top", type=int, default=20, help="rows per ranking (default 20)"
    )
    parser.add_argument(
        "--sort",
        default=None,
        choices=("cumulative", "tottime", "ncalls"),
        help="print a single ranking instead of cumulative + tottime",
    )
    parser.add_argument(
        "--out", default=None, help="also dump raw stats to this file"
    )
    args = parser.parse_args(argv)

    from repro.core.model import named_models
    from repro.engine.config import paper_config
    from repro.engine.sim import run_baseline, run_trace
    from repro.programs.suite import kernel

    config = paper_config(args.config)
    trace = kernel(args.benchmark).trace(args.max_instructions)
    if args.model == "none":
        def simulate():
            return run_baseline(trace, config)
    else:
        model = named_models()[args.model]

        def simulate():
            return run_trace(
                trace,
                config,
                model,
                confidence=args.confidence,
                update_timing=args.timing,
            )

    profiler = cProfile.Profile()
    result = profiler.runcall(simulate)
    print(
        f"{args.benchmark} @ {config.label}, model={args.model}: "
        f"{result.counters.retired} instructions in "
        f"{result.counters.cycles} cycles\n"
    )

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs()
    for sort in (args.sort,) if args.sort else ("cumulative", "tottime"):
        print(f"=== top {args.top} by {sort} ===")
        stats.sort_stats(sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw stats written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
